// The shared equi-join hash table: built once in parallel, probed
// concurrently.
//
// Build is two phases on the pipeline driver's primitives: (1) key hashes
// for every build row, morsel-parallel into per-row slots; (2) hash-disjoint
// partitions, one worker per partition, each scanning the hash array in row
// order so every bucket's row list stays ascending. Because the partitions
// split the *hash space* (not the row space), the merged table is a plain
// concatenation of read-only partitions — no locks, no rehash — and its
// bucket contents are identical for every thread and partition count. Probes
// are pure reads, so morsel workers probe the finished table concurrently.
//
// The build also publishes a JoinBloomFilter over the key hashes (plus a
// numeric min/max zone for single-key joins): probe-side pipelines test it
// before probing — sideways information passing — and skip rows (or whole
// morsels, via the zone) that cannot match. The filter is conservative: no
// false negatives, so dropping rows it rejects preserves inner-join
// semantics exactly.
//
// Dictionary-encoded string keys probe on codes: if both sides share a
// dictionary, key equality is an int32 compare; if the dictionaries differ,
// a probe-code→build-code remap (two-pointer merge of the sorted
// dictionaries, cached per probe dictionary) gives the same O(1) compare and
// an early reject when the probe value is absent from the build dictionary.
// Unencoded columns fall back to the generic cell compare.
//
// An empty key set degrades to one bucket holding every build row: probing
// any row matches all of them, which is exactly the row engine's
// cross-product semantics for condition-less joins.

#ifndef MQO_VEXEC_JOIN_TABLE_H_
#define MQO_VEXEC_JOIN_TABLE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "algebra/logical_expr.h"
#include "storage/column_batch.h"
#include "storage/pipeline.h"

namespace mqo {

/// One resolved join: condition column indices and the joined output schema.
struct JoinSpec {
  struct Cond {
    int left;   ///< Key column index on the probe (left) side.
    int right;  ///< Key column index on the build (right) side.
  };
  std::vector<Cond> conds;
  std::vector<ColumnRef> out_names;  ///< Left names then right names.
};

/// Resolves `predicate` against the two schemas (either orientation per
/// condition, as JoinRows does) and rejects overlapping output aliases with
/// the row engine's Unimplemented status.
Result<JoinSpec> ResolveJoinSpec(const std::vector<ColumnRef>& left,
                                 const std::vector<ColumnRef>& right,
                                 const JoinPredicate& predicate);

/// Full key hash of one row: the value every build row is bucketed under and
/// every probe row is looked up with. Exposed so scan-side Bloom prefilters
/// compute bit-identical hashes.
uint64_t JoinKeyHash(const ColumnBatch& batch, const std::vector<int>& cols,
                     uint32_t row);

class JoinBloomFilter;

/// Refines `sel` (row positions into `batch`) to the rows whose join-key
/// hash may be in `bloom`. With `use_range` (single numeric key), rows whose
/// key falls outside the filter's published min/max are dropped too. The
/// surviving set is a pure per-row function — independent of morsel
/// boundaries and thread counts. Returns the number of rows dropped.
size_t BloomRefineSel(const ColumnBatch& batch, const std::vector<int>& keys,
                      const JoinBloomFilter& bloom, bool use_range,
                      SelVector* sel);

/// Min/max of a numeric column over rows [begin, end), as flat typed loops.
/// Precondition: begin < end.
void NumericMinMax(const ColumnVector& col, uint32_t begin, uint32_t end,
                   double* lo, double* hi);

/// Compact Bloom filter over a build side's key hashes, plus an optional
/// numeric key range for zone (min/max) pruning. Immutable after Build;
/// MayContain never returns a false negative.
class JoinBloomFilter {
 public:
  /// ~12 bits per key with two probe positions (~2% false positives).
  static std::shared_ptr<JoinBloomFilter> Build(
      const std::vector<uint64_t>& hashes);

  bool MayContain(uint64_t h) const {
    const uint64_t m = h * 0xff51afd7ed558ccdull;
    const uint64_t i1 = h & bit_mask_;
    const uint64_t i2 = (m ^ (m >> 29)) & bit_mask_;
    return ((bits_[i1 >> 6] >> (i1 & 63)) & (bits_[i2 >> 6] >> (i2 & 63)) &
            1) != 0;
  }

  /// Zone range over a single numeric build key (unset for string or
  /// multi-column keys).
  bool has_range() const { return has_range_; }
  double min_key() const { return min_key_; }
  double max_key() const { return max_key_; }

  void SetRange(double min_key, double max_key) {
    has_range_ = true;
    min_key_ = min_key;
    max_key_ = max_key;
  }

 private:
  std::vector<uint64_t> bits_;
  uint64_t bit_mask_ = 0;  ///< Bit count minus one (a power of two).
  bool has_range_ = false;
  double min_key_ = 0.0;
  double max_key_ = 0.0;
};

/// Read-only hash table over a build-side batch, shared across probe
/// workers.
class JoinHashTable {
 public:
  /// Builds over `build`, keyed by `key_cols` (column indices into `build`).
  /// `options.num_threads > 1` parallelizes both build phases.
  static JoinHashTable Build(ColumnBatch build, std::vector<int> key_cols,
                             const PipelineOptions& options);

  /// Per-probe-batch key resolution: how each key column compares against
  /// its build counterpart. Built once per chunk by Prepare(), then shared
  /// by every row probe into that chunk.
  struct PreparedProbe {
    enum class Mode : uint8_t {
      kGeneric,   ///< Value-semantics CellsEqual.
      kSameDict,  ///< Both sides share one dictionary: compare codes.
      kRemap,     ///< Different dictionaries: probe code → build code map.
    };
    struct Key {
      Mode mode = Mode::kGeneric;
      const std::vector<int32_t>* remap = nullptr;  ///< For kRemap.
    };
    std::vector<Key> keys;
    int dict_keys = 0;  ///< Keys resolved to code compares (obs: dict_hits).
    /// Pins cached remap vectors (and their dictionaries) for this probe.
    std::vector<std::shared_ptr<const std::vector<int32_t>>> pinned;
  };

  /// Resolves the probe-side key columns against the build side, building
  /// (or fetching from the cache) dictionary remaps where the sides use
  /// different dictionaries. Thread-safe.
  PreparedProbe Prepare(const ColumnBatch& probe,
                        const std::vector<int>& probe_keys) const;

  /// Appends to `out` the build rows whose keys equal probe row `row` of
  /// `probe` (key columns `probe_keys`, parallel to the build key columns),
  /// in ascending build-row order. Thread-safe: the table is immutable.
  void ProbeWith(const PreparedProbe& prepared, const ColumnBatch& probe,
                 const std::vector<int>& probe_keys, uint32_t row,
                 SelVector* out) const;

  /// Prepare + ProbeWith convenience for single-row callers.
  void Probe(const ColumnBatch& probe, const std::vector<int>& probe_keys,
             uint32_t row, SelVector* out) const;

  /// The build-side batch (for gathering matched rows).
  const ColumnBatch& build() const { return build_; }

  /// Bloom filter over the build keys (null for condition-less joins).
  const std::shared_ptr<const JoinBloomFilter>& bloom() const {
    return bloom_;
  }

  size_t num_partitions() const { return parts_.size(); }

  /// Dictionary remaps built so far (obs: vexec.dict_remap).
  int64_t remap_builds() const {
    return remap_->builds.load(std::memory_order_relaxed);
  }

 private:
  // Remap cache: (key position, probe dictionary) → probe-code→build-code
  // map. Keys hold the probe dictionary alive, so a cached entry can never
  // be confused with a new dictionary reusing the same address; values pin
  // the maps handed out via PreparedProbe. Boxed so the table stays movable
  // (Build returns by value).
  struct RemapState {
    std::mutex mu;
    std::map<std::pair<size_t, std::shared_ptr<const ColumnDict>>,
             std::shared_ptr<const std::vector<int32_t>>>
        cache;
    std::atomic<int64_t> builds{0};
  };

  ColumnBatch build_;
  std::vector<int> key_cols_;
  uint64_t part_mask_ = 0;  ///< parts_.size() - 1 (a power of two).
  std::vector<std::unordered_map<uint64_t, SelVector>> parts_;
  std::shared_ptr<const JoinBloomFilter> bloom_;
  std::unique_ptr<RemapState> remap_ = std::make_unique<RemapState>();
};

}  // namespace mqo

#endif  // MQO_VEXEC_JOIN_TABLE_H_
