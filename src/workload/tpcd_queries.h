// Structurally faithful TPC-D queries used in the paper's experiments
// (Section 6): the batched workload Q3, Q5, Q7, Q8, Q9, Q10 (each repeated
// twice with different selection constants, composing BQ1..BQ6) and the
// stand-alone queries Q2, Q2-D, Q11, Q15.
//
// Substitutions from real TPC-D SQL (documented in DESIGN.md):
//  - LIKE predicates are replaced by sargable range/equality predicates with
//    comparable selectivity (e.g. Q9's p_name LIKE '%green%' -> p_size range).
//  - Arithmetic aggregate arguments (l_extendedprice * (1 - l_discount))
//    aggregate the base column.
//  - Q2's correlated subquery is expressed via its decorrelated join with the
//    per-partkey MIN aggregate; the correlated-evaluation sharing the paper
//    describes appears as intra-query common subexpressions.
//  - Q11's HAVING-against-global-sum is expressed as a two-root query (the
//    grouped sum and the global sum), which shares the joined input and
//    additionally exercises aggregate subsumption.

#ifndef MQO_WORKLOAD_TPCD_QUERIES_H_
#define MQO_WORKLOAD_TPCD_QUERIES_H_

#include <string>
#include <vector>

#include "algebra/logical_expr.h"

namespace mqo {

/// Batched-workload queries. `variant` is 0 or 1 and switches the selection
/// constants (the paper repeats each query twice with different constants).
LogicalExprPtr MakeQ3(int variant);
/// Extra TPC-D queries beyond the paper's figure set (used by tests and
/// examples): Q1 (pricing summary over lineitem) and Q6 (forecast revenue,
/// a selective scalar aggregate).
LogicalExprPtr MakeQ1(int variant);
LogicalExprPtr MakeQ6(int variant);
LogicalExprPtr MakeQ5(int variant);
LogicalExprPtr MakeQ7(int variant);
LogicalExprPtr MakeQ8(int variant);
LogicalExprPtr MakeQ9(int variant);
LogicalExprPtr MakeQ10(int variant);

/// Composite batch BQi (1 <= i <= 6): the first i of {Q3, Q5, Q7, Q8, Q9,
/// Q10}, each with both variants. Returns the 2i query roots.
std::vector<LogicalExprPtr> MakeBatchedWorkload(int num_queries);

/// Names of the batched queries in order ("Q3", "Q5", ...).
std::vector<std::string> BatchedQueryNames();

/// Stand-alone queries (Experiment 2). Each returns the root set for one
/// combined DAG.
std::vector<LogicalExprPtr> MakeQ2();
std::vector<LogicalExprPtr> MakeQ2D();
std::vector<LogicalExprPtr> MakeQ11();
std::vector<LogicalExprPtr> MakeQ15();

}  // namespace mqo

#endif  // MQO_WORKLOAD_TPCD_QUERIES_H_
