#include "workload/example1.h"

namespace mqo {

Catalog MakeExample1Catalog() {
  Catalog cat;
  // Heap relations (no indexes) larger than operator memory, so joins need
  // external sorts or multi-pass nested loops. That reproduces the paper's
  // cost shape: computing a join is expensive relative to scanning its
  // (materialized) result, so computing (B ⋈ C) once and reading it twice
  // wins — exactly Figure 1's 460-vs-370 trade-off.
  const double rows = 800000;
  for (const char* name : {"A", "B", "C", "D"}) {
    Table t(name, rows);
    ColumnDef key;
    key.name = "k";
    key.type = ColumnType::kInt;
    key.width_bytes = 4;
    // Sparse key domain (40x the row count): joins on k are selective, so a
    // join's result is far cheaper to rescan than to recompute — the paper's
    // "join costs 100, scan costs 10" instantiation.
    key.distinct_values = rows * 40;
    key.min_value = 0;
    key.max_value = rows * 40;
    t.AddColumn(key);
    ColumnDef payload;
    payload.name = "payload";
    payload.type = ColumnType::kString;
    payload.width_bytes = 100;
    payload.distinct_values = rows;
    t.AddColumn(payload);
    (void)cat.AddTable(std::move(t));
  }
  return cat;
}

std::vector<LogicalExprPtr> MakeExample1Queries() {
  auto on = [](const char* la, const char* ra) {
    JoinCondition c;
    c.left = ColumnRef(la, "k");
    c.right = ColumnRef(ra, "k");
    return c;
  };
  // Query 1: A ⋈ B ⋈ C.
  auto q1 = LogicalExpr::Join(
      LogicalExpr::Join(LogicalExpr::Scan("A"), LogicalExpr::Scan("B"),
                        JoinPredicate({on("A", "B")})),
      LogicalExpr::Scan("C"), JoinPredicate({on("B", "C")}));
  // Query 2: B ⋈ C ⋈ D.
  auto q2 = LogicalExpr::Join(
      LogicalExpr::Join(LogicalExpr::Scan("B"), LogicalExpr::Scan("C"),
                        JoinPredicate({on("B", "C")})),
      LogicalExpr::Scan("D"), JoinPredicate({on("C", "D")}));
  return {q1, q2};
}

}  // namespace mqo
