#include "workload/tpcd_queries.h"

#include <cassert>

#include "catalog/catalog.h"

namespace mqo {

namespace {

ColumnRef Col(const std::string& alias, const std::string& name) {
  return ColumnRef(alias, name);
}

Comparison Cmp(const std::string& alias, const std::string& name, CompareOp op,
               Literal lit) {
  Comparison c;
  c.column = Col(alias, name);
  c.op = op;
  c.literal = std::move(lit);
  return c;
}

Comparison DateCmp(const std::string& alias, const std::string& name,
                   CompareOp op, const std::string& iso) {
  return Cmp(alias, name, op, Literal(static_cast<double>(DateToDays(iso))));
}

JoinCondition On(const std::string& la, const std::string& ln,
                 const std::string& ra, const std::string& rn) {
  JoinCondition c;
  c.left = Col(la, ln);
  c.right = Col(ra, rn);
  return c;
}

LogicalExprPtr JoinOn(LogicalExprPtr l, LogicalExprPtr r,
                      std::vector<JoinCondition> conds) {
  return LogicalExpr::Join(std::move(l), std::move(r),
                           JoinPredicate(std::move(conds)));
}

LogicalExprPtr Where(LogicalExprPtr child, std::vector<Comparison> conjuncts) {
  return LogicalExpr::Select(std::move(child), Predicate(std::move(conjuncts)));
}

AggExpr Sum(const std::string& alias, const std::string& name) {
  AggExpr a;
  a.func = AggFunc::kSum;
  a.arg = Col(alias, name);
  return a;
}

AggExpr Min(const std::string& alias, const std::string& name) {
  AggExpr a;
  a.func = AggFunc::kMin;
  a.arg = Col(alias, name);
  return a;
}

}  // namespace

LogicalExprPtr MakeQ1(int variant) {
  // Pricing summary report: grouped aggregate over a shipdate prefix of
  // lineitem.
  const char* ship_hi = variant == 0 ? "1998-09-02" : "1998-11-01";
  auto filtered = Where(LogicalExpr::Scan("lineitem"),
                        {DateCmp("lineitem", "l_shipdate", CompareOp::kLe,
                                 ship_hi)});
  AggExpr cnt;
  cnt.func = AggFunc::kCount;
  return LogicalExpr::Aggregate(
      std::move(filtered),
      {Col("lineitem", "l_returnflag"), Col("lineitem", "l_linestatus")},
      {Sum("lineitem", "l_quantity"), Sum("lineitem", "l_extendedprice"), cnt});
}

LogicalExprPtr MakeQ6(int variant) {
  // Forecast revenue change: a selective scalar aggregate on lineitem.
  const char* date_lo = variant == 0 ? "1994-01-01" : "1995-01-01";
  const char* date_hi = variant == 0 ? "1995-01-01" : "1996-01-01";
  auto filtered = Where(
      LogicalExpr::Scan("lineitem"),
      {DateCmp("lineitem", "l_shipdate", CompareOp::kGe, date_lo),
       DateCmp("lineitem", "l_shipdate", CompareOp::kLt, date_hi),
       Cmp("lineitem", "l_quantity", CompareOp::kLt, 24.0)});
  return LogicalExpr::Aggregate(std::move(filtered), {},
                                {Sum("lineitem", "l_extendedprice")});
}

LogicalExprPtr MakeQ3(int variant) {
  // Shipping-priority query: customer x orders x lineitem.
  const char* order_date = variant == 0 ? "1995-03-15" : "1995-06-30";
  const char* ship_date = variant == 0 ? "1995-03-15" : "1995-06-30";
  auto tree = JoinOn(
      JoinOn(LogicalExpr::Scan("customer"), LogicalExpr::Scan("orders"),
             {On("customer", "c_custkey", "orders", "o_custkey")}),
      LogicalExpr::Scan("lineitem"),
      {On("orders", "o_orderkey", "lineitem", "l_orderkey")});
  tree = Where(std::move(tree),
               {Cmp("customer", "c_mktsegment", CompareOp::kEq, "BUILDING"),
                DateCmp("orders", "o_orderdate", CompareOp::kLt, order_date),
                DateCmp("lineitem", "l_shipdate", CompareOp::kGt, ship_date)});
  return LogicalExpr::Aggregate(
      std::move(tree),
      {Col("lineitem", "l_orderkey"), Col("orders", "o_orderdate"),
       Col("orders", "o_shippriority")},
      {Sum("lineitem", "l_extendedprice")});
}

LogicalExprPtr MakeQ5(int variant) {
  // Local-supplier-volume query: 6-way join with a region restriction.
  const char* date_lo = variant == 0 ? "1994-01-01" : "1995-01-01";
  const char* date_hi = variant == 0 ? "1995-01-01" : "1996-01-01";
  auto co = JoinOn(LogicalExpr::Scan("customer"), LogicalExpr::Scan("orders"),
                   {On("customer", "c_custkey", "orders", "o_custkey")});
  auto col = JoinOn(std::move(co), LogicalExpr::Scan("lineitem"),
                    {On("orders", "o_orderkey", "lineitem", "l_orderkey")});
  auto cols = JoinOn(std::move(col), LogicalExpr::Scan("supplier"),
                     {On("lineitem", "l_suppkey", "supplier", "s_suppkey"),
                      On("customer", "c_nationkey", "supplier", "s_nationkey")});
  auto colsn = JoinOn(std::move(cols), LogicalExpr::Scan("nation"),
                      {On("supplier", "s_nationkey", "nation", "n_nationkey")});
  auto all = JoinOn(std::move(colsn), LogicalExpr::Scan("region"),
                    {On("nation", "n_regionkey", "region", "r_regionkey")});
  all = Where(std::move(all),
              {Cmp("region", "r_name", CompareOp::kEq, "ASIA"),
               DateCmp("orders", "o_orderdate", CompareOp::kGe, date_lo),
               DateCmp("orders", "o_orderdate", CompareOp::kLt, date_hi)});
  return LogicalExpr::Aggregate(std::move(all), {Col("nation", "n_name")},
                                {Sum("lineitem", "l_extendedprice")});
}

LogicalExprPtr MakeQ7(int variant) {
  // Volume-shipping query between two nations (aliases n1, n2).
  const char* ship_hi = variant == 0 ? "1996-12-31" : "1996-06-30";
  auto sl = JoinOn(LogicalExpr::Scan("supplier"), LogicalExpr::Scan("lineitem"),
                   {On("supplier", "s_suppkey", "lineitem", "l_suppkey")});
  auto slo = JoinOn(std::move(sl), LogicalExpr::Scan("orders"),
                    {On("lineitem", "l_orderkey", "orders", "o_orderkey")});
  auto sloc = JoinOn(std::move(slo), LogicalExpr::Scan("customer"),
                     {On("orders", "o_custkey", "customer", "c_custkey")});
  auto n1 = JoinOn(std::move(sloc), LogicalExpr::Scan("nation", "n1"),
                   {On("supplier", "s_nationkey", "n1", "n_nationkey")});
  auto n2 = JoinOn(std::move(n1), LogicalExpr::Scan("nation", "n2"),
                   {On("customer", "c_nationkey", "n2", "n_nationkey")});
  auto all = Where(std::move(n2),
                   {Cmp("n1", "n_name", CompareOp::kEq, "FRANCE"),
                    Cmp("n2", "n_name", CompareOp::kEq, "GERMANY"),
                    DateCmp("lineitem", "l_shipdate", CompareOp::kGe, "1995-01-01"),
                    DateCmp("lineitem", "l_shipdate", CompareOp::kLe, ship_hi)});
  return LogicalExpr::Aggregate(
      std::move(all), {Col("n1", "n_name"), Col("n2", "n_name")},
      {Sum("lineitem", "l_extendedprice")});
}

LogicalExprPtr MakeQ8(int variant) {
  // National-market-share query: 8-way join.
  const char* date_lo = variant == 0 ? "1995-01-01" : "1995-07-01";
  const char* date_hi = variant == 0 ? "1996-12-31" : "1996-06-30";
  auto pl = JoinOn(LogicalExpr::Scan("part"), LogicalExpr::Scan("lineitem"),
                   {On("part", "p_partkey", "lineitem", "l_partkey")});
  auto pls = JoinOn(std::move(pl), LogicalExpr::Scan("supplier"),
                    {On("lineitem", "l_suppkey", "supplier", "s_suppkey")});
  auto plso = JoinOn(std::move(pls), LogicalExpr::Scan("orders"),
                     {On("lineitem", "l_orderkey", "orders", "o_orderkey")});
  auto plsoc = JoinOn(std::move(plso), LogicalExpr::Scan("customer"),
                      {On("orders", "o_custkey", "customer", "c_custkey")});
  auto n1 = JoinOn(std::move(plsoc), LogicalExpr::Scan("nation", "n1"),
                   {On("customer", "c_nationkey", "n1", "n_nationkey")});
  auto r = JoinOn(std::move(n1), LogicalExpr::Scan("region"),
                  {On("n1", "n_regionkey", "region", "r_regionkey")});
  auto n2 = JoinOn(std::move(r), LogicalExpr::Scan("nation", "n2"),
                   {On("supplier", "s_nationkey", "n2", "n_nationkey")});
  auto all = Where(std::move(n2),
                   {Cmp("region", "r_name", CompareOp::kEq, "AMERICA"),
                    Cmp("part", "p_type", CompareOp::kEq, "ECONOMY ANODIZED STEEL"),
                    DateCmp("orders", "o_orderdate", CompareOp::kGe, date_lo),
                    DateCmp("orders", "o_orderdate", CompareOp::kLe, date_hi)});
  return LogicalExpr::Aggregate(std::move(all), {Col("n2", "n_name")},
                                {Sum("lineitem", "l_extendedprice")});
}

LogicalExprPtr MakeQ9(int variant) {
  // Product-type-profit query (p_name LIKE replaced by a p_size range).
  const double size_hi = variant == 0 ? 25 : 40;
  auto ps = JoinOn(LogicalExpr::Scan("part"), LogicalExpr::Scan("partsupp"),
                   {On("part", "p_partkey", "partsupp", "ps_partkey")});
  auto pss = JoinOn(std::move(ps), LogicalExpr::Scan("supplier"),
                    {On("partsupp", "ps_suppkey", "supplier", "s_suppkey")});
  auto pssl = JoinOn(std::move(pss), LogicalExpr::Scan("lineitem"),
                     {On("partsupp", "ps_partkey", "lineitem", "l_partkey"),
                      On("partsupp", "ps_suppkey", "lineitem", "l_suppkey")});
  auto psslo = JoinOn(std::move(pssl), LogicalExpr::Scan("orders"),
                      {On("lineitem", "l_orderkey", "orders", "o_orderkey")});
  auto all = JoinOn(std::move(psslo), LogicalExpr::Scan("nation"),
                    {On("supplier", "s_nationkey", "nation", "n_nationkey")});
  all = Where(std::move(all),
              {Cmp("part", "p_size", CompareOp::kLt, size_hi)});
  return LogicalExpr::Aggregate(std::move(all), {Col("nation", "n_name")},
                                {Sum("lineitem", "l_extendedprice")});
}

LogicalExprPtr MakeQ10(int variant) {
  // Returned-item reporting query.
  const char* date_lo = variant == 0 ? "1993-10-01" : "1994-01-01";
  const char* date_hi = variant == 0 ? "1994-01-01" : "1994-04-01";
  auto co = JoinOn(LogicalExpr::Scan("customer"), LogicalExpr::Scan("orders"),
                   {On("customer", "c_custkey", "orders", "o_custkey")});
  auto col = JoinOn(std::move(co), LogicalExpr::Scan("lineitem"),
                    {On("orders", "o_orderkey", "lineitem", "l_orderkey")});
  auto all = JoinOn(std::move(col), LogicalExpr::Scan("nation"),
                    {On("customer", "c_nationkey", "nation", "n_nationkey")});
  all = Where(std::move(all),
              {Cmp("lineitem", "l_returnflag", CompareOp::kEq, "R"),
               DateCmp("orders", "o_orderdate", CompareOp::kGe, date_lo),
               DateCmp("orders", "o_orderdate", CompareOp::kLt, date_hi)});
  return LogicalExpr::Aggregate(
      std::move(all), {Col("customer", "c_custkey"), Col("nation", "n_name")},
      {Sum("lineitem", "l_extendedprice")});
}

std::vector<std::string> BatchedQueryNames() {
  return {"Q3", "Q5", "Q7", "Q8", "Q9", "Q10"};
}

std::vector<LogicalExprPtr> MakeBatchedWorkload(int num_queries) {
  assert(num_queries >= 1 && num_queries <= 6);
  using Maker = LogicalExprPtr (*)(int);
  const Maker makers[6] = {MakeQ3, MakeQ5, MakeQ7, MakeQ8, MakeQ9, MakeQ10};
  std::vector<LogicalExprPtr> roots;
  for (int i = 0; i < num_queries; ++i) {
    roots.push_back(makers[i](0));
    roots.push_back(makers[i](1));
  }
  return roots;
}

namespace {

/// The supplier-side block shared between Q2's outer query and its
/// (decorrelated) subquery: partsupp x supplier x nation x region restricted
/// to EUROPE.
LogicalExprPtr Q2SupplierBlock() {
  auto pss = JoinOn(LogicalExpr::Scan("partsupp"), LogicalExpr::Scan("supplier"),
                    {On("partsupp", "ps_suppkey", "supplier", "s_suppkey")});
  auto pssn = JoinOn(std::move(pss), LogicalExpr::Scan("nation"),
                     {On("supplier", "s_nationkey", "nation", "n_nationkey")});
  auto all = JoinOn(std::move(pssn), LogicalExpr::Scan("region"),
                    {On("nation", "n_regionkey", "region", "r_regionkey")});
  return Where(std::move(all), {Cmp("region", "r_name", CompareOp::kEq, "EUROPE")});
}

/// Per-part minimum supply cost over the EUROPE supplier block.
LogicalExprPtr Q2MinCostAggregate() {
  return LogicalExpr::Aggregate(Q2SupplierBlock(),
                                {Col("partsupp", "ps_partkey")},
                                {Min("partsupp", "ps_supplycost")});
}

/// Q2's outer query: part joined into the supplier block, with the part
/// restriction.
LogicalExprPtr Q2Outer() {
  auto outer = JoinOn(LogicalExpr::Scan("part"), Q2SupplierBlock(),
                      {On("part", "p_partkey", "partsupp", "ps_partkey")});
  return Where(std::move(outer), {Cmp("part", "p_size", CompareOp::kEq, 15.0)});
}

}  // namespace

std::vector<LogicalExprPtr> MakeQ2() {
  // Correlated minimum-cost-supplier query, expressed with the subquery's
  // aggregate joined back on the minimum cost. The EUROPE supplier block
  // occurs in both the outer query and the subquery — the intra-query common
  // subexpressions the paper's Experiment 2 exploits.
  AggExpr min_cost = Min("partsupp", "ps_supplycost");
  JoinCondition cost_match;
  cost_match.left = Col("partsupp", "ps_supplycost");
  cost_match.right = min_cost.OutputColumn();
  auto q2 = JoinOn(Q2Outer(), Q2MinCostAggregate(), {cost_match});
  return {std::move(q2)};
}

std::vector<LogicalExprPtr> MakeQ2D() {
  // Decorrelated Q2: a batch — the subquery aggregate materialized as its own
  // query plus the outer join query.
  AggExpr min_cost = Min("partsupp", "ps_supplycost");
  JoinCondition cost_match;
  cost_match.left = Col("partsupp", "ps_supplycost");
  cost_match.right = min_cost.OutputColumn();
  auto joined = JoinOn(Q2Outer(), Q2MinCostAggregate(), {cost_match});
  return {Q2MinCostAggregate(), std::move(joined)};
}

std::vector<LogicalExprPtr> MakeQ11() {
  // Important-stock query: the GERMANY partsupp block aggregated per part and
  // globally (HAVING against a scaled global sum). Two roots sharing the
  // joined input; the global sum is also derivable from the per-part sums via
  // aggregate subsumption.
  auto block = [] {
    auto pss = JoinOn(LogicalExpr::Scan("partsupp"), LogicalExpr::Scan("supplier"),
                      {On("partsupp", "ps_suppkey", "supplier", "s_suppkey")});
    auto pssn = JoinOn(std::move(pss), LogicalExpr::Scan("nation"),
                       {On("supplier", "s_nationkey", "nation", "n_nationkey")});
    return Where(std::move(pssn),
                 {Cmp("nation", "n_name", CompareOp::kEq, "GERMANY")});
  };
  auto per_part = LogicalExpr::Aggregate(block(), {Col("partsupp", "ps_partkey")},
                                         {Sum("partsupp", "ps_supplycost")});
  auto global = LogicalExpr::Aggregate(block(), {},
                                       {Sum("partsupp", "ps_supplycost")});
  return {std::move(per_part), std::move(global)};
}

std::vector<LogicalExprPtr> MakeQ15() {
  // Top-supplier query: the revenue view over a shipdate window occurs both
  // as the join input and under the MAX aggregate.
  auto revenue = [] {
    auto filtered = Where(
        LogicalExpr::Scan("lineitem"),
        {DateCmp("lineitem", "l_shipdate", CompareOp::kGe, "1996-01-01"),
         DateCmp("lineitem", "l_shipdate", CompareOp::kLt, "1996-04-01")});
    return LogicalExpr::Aggregate(std::move(filtered),
                                  {Col("lineitem", "l_suppkey")},
                                  {Sum("lineitem", "l_extendedprice")});
  };
  AggExpr total = Sum("lineitem", "l_extendedprice");
  AggExpr max_total;
  max_total.func = AggFunc::kMax;
  max_total.arg = total.OutputColumn();

  auto max_revenue = LogicalExpr::Aggregate(revenue(), {}, {max_total});

  auto supplier_rev =
      JoinOn(LogicalExpr::Scan("supplier"), revenue(),
             {On("supplier", "s_suppkey", "lineitem", "l_suppkey")});
  JoinCondition is_max;
  is_max.left = total.OutputColumn();
  is_max.right = max_total.OutputColumn();
  auto q15 = JoinOn(std::move(supplier_rev), std::move(max_revenue), {is_max});
  return {std::move(q15)};
}

}  // namespace mqo
