// The running example of the paper (Example 1 / Figure 1, after Roy et al.):
// a batch of two queries (A ⋈ B ⋈ C) and (B ⋈ C ⋈ D) whose locally optimal
// plans share nothing, but whose consolidated plan computes (B ⋈ C) once.

#ifndef MQO_WORKLOAD_EXAMPLE1_H_
#define MQO_WORKLOAD_EXAMPLE1_H_

#include <vector>

#include "algebra/logical_expr.h"
#include "catalog/catalog.h"

namespace mqo {

/// Four small relations A, B, C, D, each with a join column and a payload.
/// Row counts are chosen so every base relation scans in a few blocks and
/// the intermediate (B ⋈ C) is small enough that materializing it pays off.
Catalog MakeExample1Catalog();

/// The two queries of Example 1: {A ⋈ B ⋈ C, B ⋈ C ⋈ D}, joined on the
/// shared `k` columns.
std::vector<LogicalExprPtr> MakeExample1Queries();

}  // namespace mqo

#endif  // MQO_WORKLOAD_EXAMPLE1_H_
