#include "optimizer/plan_search.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"

namespace mqo {

namespace {

/// Picks the cheapest candidate; nullptr when none.
PlanNodePtr Cheapest(const std::vector<PlanNodePtr>& candidates) {
  PlanNodePtr best;
  for (const auto& c : candidates) {
    if (c == nullptr) continue;
    if (best == nullptr || c->total_cost < best->total_cost) best = c;
  }
  return best;
}

}  // namespace

PlanSearch::PlanSearch(Memo* memo, StatsEstimator* stats,
                       const CostModel& cost_model, std::set<EqId> materialized,
                       SearchOptions options)
    : memo_(memo), stats_(stats), cm_(cost_model), options_(options) {
  for (EqId e : materialized) mat_.insert(memo_->Find(e));
}

PlanSearch::PlanSearch(const PlanSearch* base, EqId toggled, bool materialized)
    : memo_(base->memo_),
      stats_(base->stats_),
      cm_(base->cm_),
      options_(base->options_),
      mat_(base->mat_),
      base_(base) {
  assert(base->base_ == nullptr && "overlays do not stack");
  if (toggled < 0) return;  // empty-cone overlay: every lookup falls through
  const EqId eq = memo_->Find(toggled);
  if (materialized) {
    mat_.insert(eq);
  } else {
    mat_.erase(eq);
  }
  for (EqId ancestor : memo_->AncestorClasses(eq)) cone_.insert(ancestor);
}

const PlanNodePtr* PlanSearch::BaseUse(EqId eq, uint64_t key) const {
  if (base_ == nullptr || cone_.count(eq) > 0) return nullptr;
  auto bucket = base_->use_cache_.find(eq);
  if (bucket == base_->use_cache_.end()) return nullptr;
  auto it = bucket->second.find(key);
  return it != bucket->second.end() ? &it->second : nullptr;
}

const PlanNodePtr* PlanSearch::BaseCompute(EqId eq, uint64_t key) const {
  if (base_ == nullptr || cone_.count(eq) > 0) return nullptr;
  auto bucket = base_->compute_cache_.find(eq);
  if (bucket == base_->compute_cache_.end()) return nullptr;
  auto it = bucket->second.find(key);
  return it != bucket->second.end() ? &it->second : nullptr;
}

uint64_t PlanSearch::Key(EqId eq, const SortOrder& order) const {
  uint64_t h = static_cast<uint64_t>(memo_->Find(eq));
  for (const auto& c : order) h = HashCombine(h, c.Hash());
  return h;
}

void PlanSearch::ToggleMaterialized(EqId eq, bool materialized) {
  assert(base_ == nullptr && "toggle the base, not an overlay");
  eq = memo_->Find(eq);
  if (materialized) {
    mat_.insert(eq);
  } else {
    mat_.erase(eq);
  }
  for (EqId ancestor : memo_->AncestorClasses(eq)) {
    use_cache_.erase(ancestor);
    compute_cache_.erase(ancestor);
    mat_order_cache_.erase(ancestor);
  }
}

double PlanSearch::WriteCost(EqId eq) {
  const RelStats& s = stats_->ClassStats(eq);
  return cm_.SeqWriteCost(s.Blocks(cm_));
}

double PlanSearch::ReadCost(EqId eq) {
  const RelStats& s = stats_->ClassStats(eq);
  return cm_.SeqReadCost(s.Blocks(cm_));
}

const SortOrder& PlanSearch::MaterializedOrder(EqId eq) {
  eq = memo_->Find(eq);
  auto it = mat_order_cache_.find(eq);
  if (it != mat_order_cache_.end()) return it->second;
  if (base_ != nullptr && cone_.count(eq) == 0) {
    auto base_it = base_->mat_order_cache_.find(eq);
    if (base_it != base_->mat_order_cache_.end()) {
      ++reuse_hits_;
      return base_it->second;
    }
  }
  // Reserve the slot first: the compute search below may consult other
  // materialized nodes but never this one at its own root.
  auto [ins, _] = mat_order_cache_.emplace(eq, SortOrder{});
  PlanNodePtr compute = ComputePlan(eq, {});
  if (compute != nullptr) ins->second = compute->output_order;
  return ins->second;
}

PlanNodePtr PlanSearch::UsePlan(EqId eq, const SortOrder& required) {
  eq = memo_->Find(eq);
  const uint64_t key = Key(eq, required);
  {
    auto bucket = use_cache_.find(eq);
    if (bucket != use_cache_.end()) {
      auto it = bucket->second.find(key);
      if (it != bucket->second.end()) return it->second;
    }
  }
  if (const PlanNodePtr* reused = BaseUse(eq, key)) {
    ++reuse_hits_;
    return *reused;
  }

  std::vector<PlanNodePtr> candidates;
  candidates.push_back(ComputePlan(eq, required));
  if (mat_.count(eq) > 0) {
    // Read the materialized result, which is stored in its compute plan's
    // order; sort on top only if the required order is not satisfied.
    const SortOrder stored = MaterializedOrder(eq);
    PlanNodePtr read = MakePlanNode(PhysOp::kReadMaterialized, eq, stored,
                                    ReadCost(eq), "E" + std::to_string(eq), {});
    if (!OrderSatisfies(stored, required)) {
      const double sort_cost = cm_.SortCost(stats_->ClassStats(eq).Blocks(cm_));
      read = MakePlanNode(PhysOp::kSort, eq, required, sort_cost,
                          SortOrderToString(required), {read});
    }
    candidates.push_back(read);
  }
  PlanNodePtr best = Cheapest(candidates);
  use_cache_[eq].emplace(key, best);
  return best;
}

PlanNodePtr PlanSearch::ComputePlan(EqId eq, const SortOrder& required) {
  eq = memo_->Find(eq);
  const uint64_t key = Key(eq, required);
  {
    auto bucket = compute_cache_.find(eq);
    if (bucket != compute_cache_.end()) {
      auto it = bucket->second.find(key);
      if (it != bucket->second.end()) return it->second;
    }
  }
  if (const PlanNodePtr* reused = BaseCompute(eq, key)) {
    ++reuse_hits_;
    return *reused;
  }
  if (in_progress_.count(key) > 0) {
    // Cycle guard; a well-formed LQDAG is acyclic so this never fires.
    return nullptr;
  }
  in_progress_.insert(key);
  PlanNodePtr best = ComputePlanUncached(eq, required);
  in_progress_.erase(key);
  compute_cache_[eq].emplace(key, best);
  return best;
}

PlanNodePtr PlanSearch::ComputePlanUncached(EqId eq, const SortOrder& required) {
  std::vector<PlanNodePtr> raw;
  for (OpId oid : memo_->ClassOps(eq)) {
    const MemoOp& op = memo_->op(oid);
    switch (op.kind) {
      case LogicalOp::kScan:
        AddScanCandidates(op, oid, eq, &raw);
        break;
      case LogicalOp::kSelect:
        AddSelectCandidates(op, oid, eq, &raw);
        break;
      case LogicalOp::kJoin:
        AddJoinCandidates(op, oid, eq, &raw);
        break;
      case LogicalOp::kAggregate:
        AddAggregateCandidates(op, oid, eq, &raw);
        break;
      case LogicalOp::kProject:
        AddProjectCandidates(op, oid, eq, required, &raw);
        break;
      case LogicalOp::kBatch:
        AddBatchCandidates(op, oid, eq, &raw);
        break;
    }
  }

  // Keep candidates that satisfy the required order natively...
  std::vector<PlanNodePtr> candidates;
  for (const auto& c : raw) {
    if (c != nullptr && OrderSatisfies(c->output_order, required)) {
      candidates.push_back(c);
    }
  }
  // ... and offer the external-sort enforcer on the best unordered plan.
  if (!required.empty()) {
    PlanNodePtr unordered = ComputePlan(eq, {});
    if (unordered != nullptr) {
      const double sort_cost = cm_.SortCost(stats_->ClassStats(eq).Blocks(cm_));
      candidates.push_back(MakePlanNode(PhysOp::kSort, eq, required, sort_cost,
                                        SortOrderToString(required), {unordered}));
    }
  }
  return Cheapest(candidates);
}

void PlanSearch::AddScanCandidates(const MemoOp& op, OpId oid, EqId eq,
                                   std::vector<PlanNodePtr>* out) {
  ++num_costings_;
  auto table_res = memo_->catalog()->GetTable(op.table);
  assert(table_res.ok());
  const Table* table = table_res.ValueOrDie();
  const double blocks = stats_->ClassStats(eq).Blocks(cm_);
  SortOrder order;
  if (const IndexDef* idx = table->clustered_index()) {
    for (const auto& col : idx->key_columns) order.emplace_back(op.alias, col);
  }
  out->push_back(MakePlanNode(PhysOp::kTableScan, eq, std::move(order),
                              cm_.SeqReadCost(blocks), op.table, {}, oid));
}

void PlanSearch::AddSelectCandidates(const MemoOp& op, OpId oid, EqId eq,
                                     std::vector<PlanNodePtr>* out) {
  const EqId child = memo_->Find(op.children[0]);
  const RelStats& child_stats = stats_->ClassStats(child);
  const double in_blocks = child_stats.Blocks(cm_);

  // Pipelined filter over the child (any producing order is preserved; we
  // materialize candidates for the unordered requirement and for each child
  // order reachable natively via UsePlan({}), which keeps the search simple
  // and sound: ordered requirements are additionally served by the enforcer).
  {
    ++num_costings_;
    PlanNodePtr child_plan = UsePlan(child, {});
    if (child_plan != nullptr) {
      out->push_back(MakePlanNode(PhysOp::kFilter, eq, child_plan->output_order,
                                  cm_.CpuPassCost(in_blocks),
                                  op.predicate.ToString(), {child_plan}, oid));
    }
  }

  // Indexed selection on a base relation's clustered index when some
  // conjunct constrains the leading key column.
  if (memo_->IsBaseRelation(child)) {
    for (OpId cid : memo_->ClassOps(child)) {
      const MemoOp& scan = memo_->op(cid);
      if (scan.kind != LogicalOp::kScan) continue;
      auto table_res = memo_->catalog()->GetTable(scan.table);
      assert(table_res.ok());
      const IndexDef* idx = table_res.ValueOrDie()->clustered_index();
      if (idx == nullptr) continue;
      const ColumnRef leading(scan.alias, idx->key_columns[0]);
      double lead_sel = 1.0;
      bool sargable = false;
      for (const auto& cmp : op.predicate.conjuncts()) {
        if (cmp.column == leading) {
          lead_sel *= stats_->Selectivity(cmp, child_stats);
          sargable = true;
        }
      }
      if (!sargable) continue;
      ++num_costings_;
      SortOrder order;
      for (const auto& col : idx->key_columns) order.emplace_back(scan.alias, col);
      const double matching_blocks = std::max(1.0, lead_sel * in_blocks);
      out->push_back(MakePlanNode(PhysOp::kIndexScan, eq, std::move(order),
                                  cm_.IndexedSelectionCost(matching_blocks),
                                  scan.table + ": " + op.predicate.ToString(),
                                  {}, oid));
      break;
    }
  }
}

void PlanSearch::AddJoinCandidates(const MemoOp& op, OpId oid, EqId eq,
                                   std::vector<PlanNodePtr>* out) {
  const EqId left = memo_->Find(op.children[0]);
  const EqId right = memo_->Find(op.children[1]);
  const RelStats& ls = stats_->ClassStats(left);
  const RelStats& rs = stats_->ClassStats(right);
  const RelStats& os = stats_->ClassStats(eq);
  const double lb = ls.Blocks(cm_);
  const double rb = rs.Blocks(cm_);
  const double ob = os.Blocks(cm_);

  // Resolve which side each join-condition column belongs to.
  SortOrder left_keys;
  SortOrder right_keys;
  bool resolvable = true;
  for (const auto& cond : op.join_predicate.conditions()) {
    if (ls.Find(cond.left) != nullptr && rs.Find(cond.right) != nullptr) {
      left_keys.push_back(cond.left);
      right_keys.push_back(cond.right);
    } else if (ls.Find(cond.right) != nullptr && rs.Find(cond.left) != nullptr) {
      left_keys.push_back(cond.right);
      right_keys.push_back(cond.left);
    } else {
      resolvable = false;
      break;
    }
  }
  if (!resolvable) return;

  const std::string detail = op.join_predicate.ToString();

  // Block nested-loops join: outer = left (commutativity supplies the swap as
  // a separate memo operator). The inner must be rescannable: base relations
  // and materialized nodes are; otherwise it is computed once and spooled to
  // a temporary file.
  {
    ++num_costings_;
    PlanNodePtr outer = UsePlan(left, {});
    if (outer != nullptr) {
      const double passes = cm_.BnlPasses(lb);
      double inner_cost;
      std::vector<PlanNodePtr> children = {outer};
      if (mat_.count(right) > 0 || memo_->IsBaseRelation(right)) {
        inner_cost = passes * cm_.SeqReadCost(rb);
      } else {
        PlanNodePtr inner = UsePlan(right, {});
        if (inner == nullptr) return;
        children.push_back(inner);
        inner_cost = cm_.SeqWriteCost(rb) + passes * cm_.SeqReadCost(rb);
      }
      out->push_back(MakePlanNode(PhysOp::kBlockNLJoin, eq, {},
                                  inner_cost + cm_.CpuPassCost(ob), detail,
                                  std::move(children), oid));
    }
  }

  // Index nested-loops join (optional extension): probe the inner's
  // clustered index once per outer row. Wins when the outer is small.
  if (options_.enable_index_nl_join && !right_keys.empty() &&
      memo_->IsBaseRelation(right)) {
    for (OpId cid : memo_->ClassOps(right)) {
      const MemoOp& scan = memo_->op(cid);
      if (scan.kind != LogicalOp::kScan) continue;
      auto table_res = memo_->catalog()->GetTable(scan.table);
      assert(table_res.ok());
      const IndexDef* idx = table_res.ValueOrDie()->clustered_index();
      if (idx == nullptr) continue;
      const ColumnRef leading(scan.alias, idx->key_columns[0]);
      if (!(right_keys.front() == leading)) continue;
      ++num_costings_;
      PlanNodePtr outer = UsePlan(left, {});
      if (outer == nullptr) break;
      // Per probe: two random index-node reads plus the matching leaf data.
      const ColumnStat* key_stat = rs.Find(leading);
      const double matches =
          rs.rows / std::max(1.0, key_stat != nullptr ? key_stat->distinct : 1.0);
      const double blocks_per_probe = std::max(
          1.0, matches * rs.row_width_bytes / cm_.params().block_size_bytes);
      const double probe_cost =
          2.0 * (cm_.params().seek_ms + cm_.params().read_ms_per_block) +
          blocks_per_probe *
              (cm_.params().read_ms_per_block + cm_.params().cpu_ms_per_block);
      out->push_back(MakePlanNode(PhysOp::kIndexNLJoin, eq, outer->output_order,
                                  ls.rows * probe_cost + cm_.CpuPassCost(ob),
                                  detail, {outer}, oid));
      break;
    }
  }

  // Merge join: both inputs in join-key order (enforcers inserted by the
  // children's own searches when needed). Output keeps the left key order.
  if (!left_keys.empty()) {
    ++num_costings_;
    PlanNodePtr lp = UsePlan(left, left_keys);
    PlanNodePtr rp = UsePlan(right, right_keys);
    if (lp != nullptr && rp != nullptr) {
      out->push_back(MakePlanNode(PhysOp::kMergeJoin, eq, left_keys,
                                  cm_.CpuPassCost(lb + rb + ob), detail,
                                  {lp, rp}, oid));
    }
  }
}

void PlanSearch::AddAggregateCandidates(const MemoOp& op, OpId oid, EqId eq,
                                        std::vector<PlanNodePtr>* out) {
  ++num_costings_;
  const EqId child = memo_->Find(op.children[0]);
  const double in_blocks = stats_->ClassStats(child).Blocks(cm_);
  std::string detail;
  for (const auto& g : op.group_by) {
    if (!detail.empty()) detail += ", ";
    detail += g.ToString();
  }
  if (op.group_by.empty()) {
    // Scalar aggregate: single CPU pass, no order requirement.
    PlanNodePtr child_plan = UsePlan(child, {});
    if (child_plan != nullptr) {
      out->push_back(MakePlanNode(PhysOp::kSortAggregate, eq, {},
                                  cm_.CpuPassCost(in_blocks), detail,
                                  {child_plan}, oid));
    }
    return;
  }
  // Sort-based aggregation: input in group-by order, output stays in it.
  SortOrder group_order(op.group_by.begin(), op.group_by.end());
  PlanNodePtr child_plan = UsePlan(child, group_order);
  if (child_plan != nullptr) {
    out->push_back(MakePlanNode(PhysOp::kSortAggregate, eq, group_order,
                                cm_.CpuPassCost(in_blocks), detail,
                                {child_plan}, oid));
  }
}

void PlanSearch::AddProjectCandidates(const MemoOp& op, OpId oid, EqId eq,
                                      const SortOrder& required,
                                      std::vector<PlanNodePtr>* out) {
  ++num_costings_;
  const EqId child = memo_->Find(op.children[0]);
  const double out_blocks = stats_->ClassStats(eq).Blocks(cm_);
  // Projection preserves its child's order over surviving columns; pass the
  // requirement straight down (required columns are produced by this class,
  // hence also by the child).
  PlanNodePtr child_plan = UsePlan(child, required);
  if (child_plan == nullptr) return;
  SortOrder order = child_plan->output_order;
  // Truncate the order at the first projected-away column.
  size_t keep = 0;
  for (; keep < order.size(); ++keep) {
    if (std::find(op.project_columns.begin(), op.project_columns.end(),
                  order[keep]) == op.project_columns.end()) {
      break;
    }
  }
  order.resize(keep);
  out->push_back(MakePlanNode(PhysOp::kProject, eq, std::move(order),
                              cm_.CpuPassCost(out_blocks), "", {child_plan}, oid));
}

void PlanSearch::AddBatchCandidates(const MemoOp& op, OpId oid, EqId eq,
                                    std::vector<PlanNodePtr>* out) {
  ++num_costings_;
  std::vector<PlanNodePtr> children;
  for (EqId c : op.children) {
    PlanNodePtr plan = UsePlan(c, {});
    if (plan == nullptr) return;
    children.push_back(std::move(plan));
  }
  out->push_back(MakePlanNode(PhysOp::kBatchRoot, eq, {}, 0.0, "",
                              std::move(children), oid));
}

}  // namespace mqo
