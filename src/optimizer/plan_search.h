// Volcano-style physical plan search over the expanded LQDAG, aware of a set
// of materialized equivalence nodes.
//
// For a fixed materialized set S, a PlanSearch instance memoizes
//   UsePlan(eq, order)     — best plan that may read eq (or any descendant)
//                            from its materialization, and
//   ComputePlan(eq, order) — best plan that computes eq at its root (used to
//                            cost producing a node of S itself).
// Sort-order requirements are satisfied either natively (clustered scans,
// merge joins, sort-based aggregation) or by an external-sort enforcer.

#ifndef MQO_OPTIMIZER_PLAN_SEARCH_H_
#define MQO_OPTIMIZER_PLAN_SEARCH_H_

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "cost/cost_model.h"
#include "cost/stats.h"
#include "physical/plan.h"

namespace mqo {

/// Physical search knobs beyond the cost constants.
struct SearchOptions {
  /// Enables the index nested-loops join alternative (probe a base
  /// relation's clustered index per outer row). Off by default: the paper's
  /// operator set (Section 6) does not include it; bench_inlj ablates it.
  bool enable_index_nl_join = false;
};

/// One plan search, valid for a fixed materialized set.
class PlanSearch {
 public:
  /// `materialized` holds canonical EqIds. The memo must be fully expanded.
  PlanSearch(Memo* memo, StatsEstimator* stats, const CostModel& cost_model,
             std::set<EqId> materialized, SearchOptions options = {});

  /// Cone-scoped overlay: a search for base's set with the materialization
  /// status of `toggled` flipped to `materialized`, that reuses `base`'s
  /// cached plans for every class outside AncestorClasses(toggled) and
  /// recomputes only inside that cone. A class's best plan depends only on
  /// its downward closure, and a class outside the cone cannot reach
  /// `toggled`, so every reused plan is exactly what a fresh full search
  /// would produce — per-candidate cost drops from O(memo) to O(cone)
  /// without copying the base's caches. `toggled < 0` means no flip (an
  /// empty-cone overlay evaluating the base's own set). The overlay never
  /// mutates `base`, so many overlays over one pinned base may run on
  /// separate threads concurrently.
  PlanSearch(const PlanSearch* base, EqId toggled, bool materialized);

  /// Best plan producing `eq` in `required` order, allowed to read any
  /// materialized node (including eq itself). Never returns null for a
  /// well-formed DAG.
  PlanNodePtr UsePlan(EqId eq, const SortOrder& required);

  /// Best plan that computes `eq` with a real operator at the root (its
  /// descendants may still read materialized nodes). Used to cost the
  /// one-time computation of a node chosen for materialization.
  PlanNodePtr ComputePlan(EqId eq, const SortOrder& required);

  /// Cost of writing out class `eq` for sharing (sequential write).
  double WriteCost(EqId eq);

  /// Cost of one sequential read of the materialized class `eq`.
  double ReadCost(EqId eq);

  /// Sort order a materialized node is stored in: the output order of its
  /// chosen compute plan (materialization writes the stream sequentially, so
  /// the order survives on disk — Roy et al. track physical properties of
  /// intermediate results the same way).
  const SortOrder& MaterializedOrder(EqId eq);

  /// Number of operator-implementation costings performed (instrumentation
  /// for the lazy-evaluation ablation).
  int64_t num_costings() const { return num_costings_; }

  /// Overlay instrumentation: cached plans served from the base search
  /// (0 for a non-overlay search) and the size of the recomputed cone.
  int64_t reuse_hits() const { return reuse_hits_; }
  int64_t cone_size() const { return static_cast<int64_t>(cone_.size()); }

  /// Incremental re-optimization (Roy et al.'s second optimization, reused
  /// by the paper's Section 5.1): flips the materialization status of `eq`
  /// and drops cached plans only for `eq` and its ancestor classes — every
  /// other cached plan is unaffected by the change and is kept. The search
  /// is copyable, so a base search for X can be cloned and toggled to
  /// evaluate X ∪ {x} cheaply.
  void ToggleMaterialized(EqId eq, bool materialized);

  const std::set<EqId>& materialized() const { return mat_; }

 private:
  uint64_t Key(EqId eq, const SortOrder& order) const;
  PlanNodePtr ComputePlanUncached(EqId eq, const SortOrder& required);
  void AddScanCandidates(const MemoOp& op, OpId oid, EqId eq,
                         std::vector<PlanNodePtr>* out);
  void AddSelectCandidates(const MemoOp& op, OpId oid, EqId eq,
                           std::vector<PlanNodePtr>* out);
  void AddJoinCandidates(const MemoOp& op, OpId oid, EqId eq,
                         std::vector<PlanNodePtr>* out);
  void AddAggregateCandidates(const MemoOp& op, OpId oid, EqId eq,
                              std::vector<PlanNodePtr>* out);
  void AddProjectCandidates(const MemoOp& op, OpId oid, EqId eq,
                            const SortOrder& required,
                            std::vector<PlanNodePtr>* out);
  void AddBatchCandidates(const MemoOp& op, OpId oid, EqId eq,
                          std::vector<PlanNodePtr>* out);

  /// Base-cache lookups for the overlay fall-through; null pointees when this
  /// search is not an overlay or the base has no entry.
  const PlanNodePtr* BaseUse(EqId eq, uint64_t key) const;
  const PlanNodePtr* BaseCompute(EqId eq, uint64_t key) const;

  Memo* memo_;
  StatsEstimator* stats_;
  CostModel cm_;
  SearchOptions options_;
  std::set<EqId> mat_;
  /// Overlay state: the pinned read-only base search and the ancestor cone of
  /// the toggled class. Classes outside the cone fall through to `base_`'s
  /// caches. Null/empty for an ordinary full search.
  const PlanSearch* base_ = nullptr;
  std::unordered_set<EqId> cone_;
  int64_t reuse_hits_ = 0;
  // Caches are nested per class so incremental invalidation can drop exactly
  // the ancestor classes of a toggled node.
  using OrderedPlans = std::unordered_map<uint64_t, PlanNodePtr>;
  std::unordered_map<EqId, OrderedPlans> use_cache_;
  std::unordered_map<EqId, OrderedPlans> compute_cache_;
  std::unordered_map<EqId, SortOrder> mat_order_cache_;
  std::set<uint64_t> in_progress_;
  int64_t num_costings_ = 0;
};

}  // namespace mqo

#endif  // MQO_OPTIMIZER_PLAN_SEARCH_H_
