// bestCost / bestUseCost over the combined query DAG (Section 2.2/2.4).
//
// For a set S of equivalence nodes to materialize:
//   bestUseCost(Q, S) = cost of the best plan for the batch root where any
//                       node of S may be read from disk (buc in the paper),
//   bestCost(Q, S)    = buc(S) + the cost of computing and writing out every
//                       node of S (each node's own plan may read other
//                       materialized nodes below it),
//   mb(S)             = bestCost(Q, ∅) − bestCost(Q, S), the materialization
//                       benefit the MQO algorithms maximize.
//
// The oracle is safe to call from the worker pool: the greedy drivers fan a
// round's candidate evaluations across threads (submodular/algorithms.cc),
// and every BestCost call either hits the concurrent cost cache or builds a
// call-local search — a cone-scoped overlay over the pinned incremental base
// when the set differs by one element, a fresh full search otherwise. The
// memo and statistics caches are pre-warmed so concurrent reads stay pure.

#ifndef MQO_OPTIMIZER_BATCH_OPTIMIZER_H_
#define MQO_OPTIMIZER_BATCH_OPTIMIZER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/element_set.h"
#include "optimizer/plan_search.h"

namespace mqo {

class ObsContext;

/// Full report of a consolidated best plan for one materialized set.
struct ConsolidatedPlan {
  double best_cost = 0.0;      ///< bc(S): use cost + materialization costs.
  double best_use_cost = 0.0;  ///< buc(S).
  double mat_cost = 0.0;       ///< bc(S) − buc(S).
  PlanNodePtr root_plan;       ///< Plan for the batch root under S.
  /// Per materialized node: (class, plan computing it, write cost).
  struct MatNode {
    EqId eq = -1;
    PlanNodePtr compute_plan;
    double write_cost = 0.0;
  };
  std::vector<MatNode> materialized;
};

/// Options for the batch optimizer.
struct BatchOptimizerOptions {
  /// Reuse the plan search across bc() calls that differ by one materialized
  /// node, invalidating only ancestor classes (Roy et al.'s incremental
  /// re-optimization; the paper reuses it in Section 5.1). Off = every bc()
  /// runs a fresh search.
  bool incremental = true;
  /// Serve the non-cone part of a delta evaluation straight from the pinned
  /// base search's caches (a fall-through overlay) instead of copying the
  /// whole search and toggling. Provably the same costs — a class outside
  /// the toggled node's ancestor cone cannot see the change — for O(cone)
  /// instead of O(memo) work per candidate. Only meaningful with
  /// `incremental`; off = the copy-and-toggle path (the "full" mode of
  /// bench_optimizer).
  bool cone_scoped = true;
  /// Debug cross-check: every cone-scoped evaluation is re-run as a fresh
  /// full search and the bc/buc pair asserted equal. Expensive; for tests.
  bool verify_cone = false;
  /// Worker threads the greedy drivers may fan candidate evaluations across
  /// (1 = serial). 0 = unset: resolved against the MQO_OPT_THREADS
  /// environment variable, else serial. The facade wires
  /// MqoOptions::exec.num_threads through here so one knob governs optimizer
  /// and executor parallelism. Results are bit-identical for every value.
  int num_threads = 0;
  /// Physical search knobs (e.g. the index nested-loops join extension).
  SearchOptions search;
  /// Statistics source of the estimator (cost/stats.h): catalog guesses
  /// (default, paper-exact plans) or collected table statistics, plus
  /// optional runtime cardinality feedback.
  StatsOptions stats;
  /// Observability sink (obs/obs.h); null = no metrics or tracing. Plan
  /// searches emit "plan_search" spans and optimizer.* counters, and the MQO
  /// layers above (materialization_problem, mqo_algorithms) reach their
  /// tracer through the optimizer they already hold.
  ObsContext* obs = nullptr;
  /// Structural fingerprints of segments already resident in the session's
  /// cross-batch cache (SharedSegmentCache::FingerprintSnapshot, taken once
  /// at batch start so one optimization sees one consistent cache state).
  /// Classes whose fingerprint is in this set cost nothing to materialize —
  /// bc(S) skips their compute + write terms — so the algorithms treat them
  /// as free reads and plans steer toward the cache. Null/empty = no cache.
  std::shared_ptr<const std::unordered_set<uint64_t>> cached_fingerprints;
};

/// Resolves BatchOptimizerOptions::num_threads: an explicit value (> 0) wins,
/// 0 falls back to the MQO_OPT_THREADS environment variable (CI ablation),
/// else serial.
int ResolveOptimizerThreads(int requested);

/// Concurrent bc/buc cache keyed by the exact materialized set. The 64-bit
/// set hash is only a bucket index; every hit verifies the stored set, so a
/// hash collision costs a probe instead of silently returning a wrong cost.
/// Get/Put take the caller-computed hash so tests can force collisions.
class CostCache {
 public:
  /// Looks up `set` under `hash`; fills `out` {bc, buc} on a verified hit.
  bool Get(uint64_t hash, const std::set<EqId>& set,
           std::pair<double, double>* out) const;

  /// Stores {bc, buc} for `set` under `hash` (first writer wins).
  void Put(uint64_t hash, const std::set<EqId>& set,
           std::pair<double, double> value);

 private:
  struct Entry {
    std::set<EqId> set;
    std::pair<double, double> cost;
  };
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::vector<Entry>> buckets_;
};

/// Expected number of materialized-store reads per materialized class in
/// `plan`: ReadMaterialized leaves across the root plan and every compute
/// plan, plus join side-inputs (single-child join nodes whose inner is a
/// materialized class — BNL/index probes rescan those from the store). The
/// executors feed this to MatStore::SetExpectedReads so eviction can weigh
/// segments by the reads still ahead of them.
std::unordered_map<EqId, double> ExpectedSegmentReads(
    const Memo& memo, const ConsolidatedPlan& plan);

/// Cost oracle for the MQO algorithms. Evaluations are cached per set, and
/// instrumentation counters expose how many full optimizations were run.
/// BestCost/BestUseCost are thread-safe between SetIncrementalBase calls;
/// SetIncrementalBase and Plan must be called from one thread at a time.
class BatchOptimizer {
 public:
  /// The memo must already contain the batch (InsertBatch) and be expanded.
  BatchOptimizer(Memo* memo, CostModel cost_model,
                 BatchOptimizerOptions options = {});

  /// bc(S). S holds equivalence class ids (any representatives).
  double BestCost(const std::set<EqId>& mat);

  /// buc(S).
  double BestUseCost(const std::set<EqId>& mat);

  /// Full consolidated plan for S (uncached; use for final reporting).
  ConsolidatedPlan Plan(const std::set<EqId>& mat);

  /// Cost of computing node `eq` with nothing else materialized, plus the
  /// write; the "standalone materialization cost" used by the use-benefit
  /// decomposition.
  double StandaloneMatCost(EqId eq);

  /// Estimated payload bytes of node `eq`'s materialized segment (the
  /// stats layer's result-size estimate) — what the memory-governed store's
  /// budget would be charged for holding it.
  double MatFootprintBytes(EqId eq);

  /// Pins S as the incremental base: subsequent bc(S ∪ {x}) / bc(S \ {x})
  /// calls overlay the pinned search and re-plan only the ancestor cone of
  /// x. The MQO greedy drivers call this after each committed pick.
  void SetIncrementalBase(const std::set<EqId>& mat);

  /// Number of distinct bc() optimizations actually executed (cache misses).
  int64_t num_optimizations() const { return num_optimizations_.load(); }

  /// How many of those were served by delta-reuse of a prior search.
  int64_t num_incremental() const { return num_incremental_.load(); }

  /// Total operator costings across all optimizations (work proxy).
  int64_t num_costings() const { return num_costings_.load(); }

  /// True iff class `eq`'s structural fingerprint matches a segment already
  /// resident in the cross-batch cache — materializing it is free (the
  /// executor serves it without recomputation). Read-only after
  /// construction, so safe from concurrent evaluations.
  bool IsCachedClass(EqId eq) const {
    return !cached_classes_.empty() &&
           cached_classes_.count(memo_->Find(eq)) > 0;
  }

  Memo* memo() { return memo_; }
  StatsEstimator* stats() { return &stats_; }
  const CostModel& cost_model() const { return cm_; }
  ObsContext* obs() { return options_.obs; }

  /// The options this optimizer runs with, `num_threads` resolved (> 0).
  const BatchOptimizerOptions& options() const { return options_; }

 private:
  std::set<EqId> Canonical(const std::set<EqId>& mat) const;
  uint64_t SetKey(const std::set<EqId>& canonical) const;
  /// Runs bc+buc on `search`, charging only the costings delta.
  std::pair<double, double> Evaluate(PlanSearch* search,
                                     const std::set<EqId>& mat);
  /// Warms every per-class cache concurrent evaluations read (union-find
  /// paths, statistics, attribute sets) so worker threads never mutate
  /// shared state. Idempotent.
  void PrewarmSharedCaches();

  Memo* memo_;
  CostModel cm_;
  BatchOptimizerOptions options_;
  StatsEstimator stats_;
  CostCache cache_;
  /// Canonical classes whose fingerprint hit `options_.cached_fingerprints`;
  /// built once in the constructor, immutable afterwards.
  std::unordered_set<EqId> cached_classes_;
  std::unique_ptr<PlanSearch> base_;  // pinned committed base (greedy's X)
  std::atomic<int64_t> num_optimizations_{0};
  std::atomic<int64_t> num_incremental_{0};
  std::atomic<int64_t> num_costings_{0};
};

}  // namespace mqo

#endif  // MQO_OPTIMIZER_BATCH_OPTIMIZER_H_
