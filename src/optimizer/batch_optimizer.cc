#include "optimizer/batch_optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/hash.h"
#include "obs/obs.h"
#include "stats/feedback.h"

namespace mqo {

int ResolveOptimizerThreads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("MQO_OPT_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<int>(v);
    if (env[0] != '\0') {
      static bool warned = false;
      if (!warned) {
        warned = true;
        std::fprintf(stderr,
                     "MQO_OPT_THREADS='%s' not recognized (want a positive "
                     "integer); running the optimizer serially\n",
                     env);
      }
    }
  }
  return 1;
}

bool CostCache::Get(uint64_t hash, const std::set<EqId>& set,
                    std::pair<double, double>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(hash);
  if (it == buckets_.end()) return false;
  for (const Entry& e : it->second) {
    if (e.set == set) {
      *out = e.cost;
      return true;
    }
  }
  return false;
}

void CostCache::Put(uint64_t hash, const std::set<EqId>& set,
                    std::pair<double, double> value) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry>& bucket = buckets_[hash];
  for (const Entry& e : bucket) {
    if (e.set == set) return;  // first writer wins; values are identical
  }
  bucket.push_back(Entry{set, value});
}

BatchOptimizer::BatchOptimizer(Memo* memo, CostModel cost_model,
                               BatchOptimizerOptions options)
    : memo_(memo), cm_(cost_model), options_(options), stats_(memo, options.stats) {
  assert(memo_->root() >= 0 && "InsertBatch must run before optimization");
  options_.num_threads = ResolveOptimizerThreads(options_.num_threads);
  if (options_.num_threads > 1) PrewarmSharedCaches();
  if (options_.cached_fingerprints != nullptr &&
      !options_.cached_fingerprints->empty()) {
    // Resolve the cross-batch cache's fingerprints against this memo once;
    // evaluations then consult an immutable per-class set (thread-safe
    // without the fingerprint cache's mutation).
    std::unordered_map<EqId, uint64_t> fp_cache;
    for (EqId c : memo_->TopologicalClasses()) {
      if (options_.cached_fingerprints->count(
              ClassFingerprint(*memo_, c, &fp_cache)) > 0) {
        cached_classes_.insert(memo_->Find(c));
      }
    }
  }
}

void BatchOptimizer::PrewarmSharedCaches() {
  // After this, worker threads only ever *read* the shared per-class state:
  // union-find links are fully compressed (Find stops writing) and every
  // class's statistics — and the memo attribute sets they derive from — are
  // resident, so concurrent ClassStats calls are pure cache hits.
  memo_->CompressPaths();
  for (EqId c : memo_->TopologicalClasses()) (void)stats_.ClassStats(c);
}

std::set<EqId> BatchOptimizer::Canonical(const std::set<EqId>& mat) const {
  std::set<EqId> out;
  for (EqId e : mat) out.insert(memo_->Find(e));
  return out;
}

uint64_t BatchOptimizer::SetKey(const std::set<EqId>& canonical) const {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (EqId e : canonical) h = HashCombine(h, static_cast<uint64_t>(e));
  return h;
}

std::pair<double, double> BatchOptimizer::Evaluate(PlanSearch* search,
                                                   const std::set<EqId>& mat) {
  const int64_t costings_before = search->num_costings();
  PlanNodePtr root = search->UsePlan(memo_->root(), {});
  assert(root != nullptr);
  double buc = root->total_cost;
  double bc = buc;
  for (EqId e : mat) {
    // A class already resident in the cross-batch cache costs nothing to
    // materialize: the executor serves it without recomputation or a write.
    if (IsCachedClass(e)) continue;
    PlanNodePtr compute = search->ComputePlan(e, {});
    assert(compute != nullptr);
    bc += compute->total_cost + search->WriteCost(e);
  }
  num_costings_.fetch_add(search->num_costings() - costings_before,
                          std::memory_order_relaxed);
  return {bc, buc};
}

namespace {

/// Returns the single differing element if |a Δ b| == 1, else -1. `added` is
/// set to true when the element is in `a` but not `b`.
EqId SymmetricDiffOne(const std::set<EqId>& a, const std::set<EqId>& b,
                      bool* added) {
  if (a.size() == b.size() + 1) {
    for (EqId e : a) {
      if (b.count(e) == 0) {
        std::set<EqId> check = b;
        check.insert(e);
        if (check == a) {
          *added = true;
          return e;
        }
        return -1;
      }
    }
  } else if (b.size() == a.size() + 1) {
    bool dummy;
    EqId e = SymmetricDiffOne(b, a, &dummy);
    if (e >= 0) *added = false;
    return e;
  }
  return -1;
}

}  // namespace

void BatchOptimizer::SetIncrementalBase(const std::set<EqId>& mat) {
  if (!options_.incremental) return;
  std::set<EqId> s = Canonical(mat);
  if (base_ != nullptr && base_->materialized() == s) return;
  std::unique_ptr<PlanSearch> next;
  if (base_ != nullptr) {
    bool added = false;
    const EqId delta = SymmetricDiffOne(s, base_->materialized(), &added);
    if (delta >= 0) {
      // Derive the new base from the old one: copy, toggle, and re-plan only
      // the toggled node's cone below.
      next = std::make_unique<PlanSearch>(*base_);
      next->ToggleMaterialized(delta, added);
    }
  }
  if (next == nullptr) {
    next = std::make_unique<PlanSearch>(memo_, &stats_, cm_, s, options_.search);
  }
  base_ = std::move(next);
  (void)Evaluate(base_.get(), s);  // warm the caches overlays fall through to
}

double BatchOptimizer::BestCost(const std::set<EqId>& mat) {
  std::set<EqId> s = Canonical(mat);
  const uint64_t key = SetKey(s);
  std::pair<double, double> result;
  if (cache_.Get(key, s, &result)) return result.first;

  num_optimizations_.fetch_add(1, std::memory_order_relaxed);
  TraceSpan span(TracerOf(options_.obs), "plan_search", "optimizer");
  ScopedTimer timer(MetricsOf(options_.obs), "optimizer.plan_search_ms");

  // Delta against the pinned base: -1 = same set, >= 0 = the toggled node,
  // kNoDelta = not within one toggle (fresh full search).
  constexpr EqId kNoDelta = -2;
  EqId delta = kNoDelta;
  bool added = false;
  if (options_.incremental && base_ != nullptr) {
    if (base_->materialized() == s) {
      delta = -1;
    } else {
      const EqId one = SymmetricDiffOne(s, base_->materialized(), &added);
      if (one >= 0) delta = one;
    }
  }

  const bool incremental_call = delta != kNoDelta;
  int64_t call_costings = 0;
  int64_t cone_classes = 0;
  int64_t reuse_hits = 0;
  if (incremental_call && options_.cone_scoped) {
    // Cone-scoped overlay: recompute only AncestorClasses(delta), serve the
    // rest from the pinned base. Call-local, so worker threads never share
    // mutable search state.
    PlanSearch overlay(base_.get(), delta, added);
    result = Evaluate(&overlay, s);
    call_costings = overlay.num_costings();
    cone_classes = overlay.cone_size();
    reuse_hits = overlay.reuse_hits();
    if (options_.verify_cone) {
      PlanSearch fresh(memo_, &stats_, cm_, s, options_.search);
      PlanNodePtr root = fresh.UsePlan(memo_->root(), {});
      double buc = root->total_cost;
      double bc = buc;
      for (EqId e : s) {
        if (IsCachedClass(e)) continue;  // mirror Evaluate's zero-cost skip
        PlanNodePtr compute = fresh.ComputePlan(e, {});
        bc += compute->total_cost + fresh.WriteCost(e);
      }
      const double tol = 1e-9 * std::max({1.0, std::abs(bc), std::abs(buc)});
      if (std::abs(bc - result.first) > tol ||
          std::abs(buc - result.second) > tol) {
        std::fprintf(stderr,
                     "verify_cone: cone-scoped bc/buc (%.17g, %.17g) != fresh "
                     "full search (%.17g, %.17g) for |S|=%zu\n",
                     result.first, result.second, bc, buc, s.size());
        std::abort();
      }
    }
  } else if (incremental_call) {
    // Full incremental path: copy the pinned base and toggle (O(memo) copy,
    // cone-only recomputation) — the pre-overlay behavior, kept for the
    // bench ablation and as the SetIncrementalBase building block.
    PlanSearch local(*base_);
    const int64_t copied_costings = local.num_costings();
    if (delta >= 0) local.ToggleMaterialized(delta, added);
    result = Evaluate(&local, s);
    call_costings = local.num_costings() - copied_costings;
  } else {
    PlanSearch local(memo_, &stats_, cm_, s, options_.search);
    result = Evaluate(&local, s);
    call_costings = local.num_costings();
  }
  if (incremental_call) {
    num_incremental_.fetch_add(1, std::memory_order_relaxed);
  }
  cache_.Put(key, s, result);

  if (span.active()) {
    span.AddNum("mat_set_size", static_cast<double>(s.size()));
    span.AddNum("incremental", incremental_call ? 1 : 0);
    span.AddNum("costings", static_cast<double>(call_costings));
    span.AddNum("cone_classes", static_cast<double>(cone_classes));
    span.AddNum("bc", result.first);
    span.AddNum("buc", result.second);
  }
  if (MetricsRegistry* m = MetricsOf(options_.obs)) {
    m->AddCounter("optimizer.plan_searches");
    if (incremental_call) m->AddCounter("optimizer.incremental_reuses");
    m->AddCounter("optimizer.costings", static_cast<double>(call_costings));
    if (cone_classes > 0) {
      m->AddCounter("optimizer.cone_classes", static_cast<double>(cone_classes));
    }
    if (reuse_hits > 0) {
      m->AddCounter("optimizer.search_reuse_hits",
                    static_cast<double>(reuse_hits));
    }
  }
  return result.first;
}

double BatchOptimizer::BestUseCost(const std::set<EqId>& mat) {
  std::set<EqId> s = Canonical(mat);
  const uint64_t key = SetKey(s);
  std::pair<double, double> cached;
  if (!cache_.Get(key, s, &cached)) {
    BestCost(mat);
    const bool hit = cache_.Get(key, s, &cached);
    assert(hit);
    (void)hit;
  }
  return cached.second;
}

ConsolidatedPlan BatchOptimizer::Plan(const std::set<EqId>& mat) {
  std::set<EqId> s = Canonical(mat);
  PlanSearch search(memo_, &stats_, cm_, s, options_.search);
  ConsolidatedPlan out;
  out.root_plan = search.UsePlan(memo_->root(), {});
  assert(out.root_plan != nullptr);
  out.best_use_cost = out.root_plan->total_cost;
  out.best_cost = out.best_use_cost;
  for (EqId e : s) {
    ConsolidatedPlan::MatNode node;
    node.eq = e;
    node.compute_plan = search.ComputePlan(e, {});
    assert(node.compute_plan != nullptr);
    if (IsCachedClass(e)) {
      // Zero-cost cached class (mirrors Evaluate): the compute plan stays as
      // the executor's fallback for a cache miss at execution time (the
      // segment may have been invalidated or evicted in between), but the
      // reported bc charges neither compute nor write.
      node.write_cost = 0.0;
    } else {
      node.write_cost = search.WriteCost(e);
      out.best_cost += node.compute_plan->total_cost + node.write_cost;
    }
    out.materialized.push_back(std::move(node));
  }
  out.mat_cost = out.best_cost - out.best_use_cost;
  return out;
}

double BatchOptimizer::StandaloneMatCost(EqId eq) {
  PlanSearch search(memo_, &stats_, cm_, {});
  PlanNodePtr compute = search.ComputePlan(memo_->Find(eq), {});
  assert(compute != nullptr);
  return compute->total_cost + search.WriteCost(eq);
}

double BatchOptimizer::MatFootprintBytes(EqId eq) {
  return stats_.ClassStats(memo_->Find(eq)).SizeBytes();
}

namespace {

void CountSegmentReads(const Memo& memo, const PlanNodePtr& plan,
                       const std::set<EqId>& materialized,
                       std::unordered_map<EqId, double>* reads) {
  if (plan == nullptr) return;
  if (plan->op == PhysOp::kReadMaterialized) {
    (*reads)[memo.Find(plan->eq)] += 1.0;
  } else if (plan->logical_op >= 0 && plan->children.size() == 1 &&
             (plan->op == PhysOp::kBlockNLJoin ||
              plan->op == PhysOp::kIndexNLJoin ||
              plan->op == PhysOp::kMergeJoin)) {
    // A join whose inner side is not a plan child rescans it as a side
    // input; the executors serve that from the store when materialized.
    const MemoOp& op = memo.op(plan->logical_op);
    const EqId inner = memo.Find(op.children[1]);
    if (materialized.count(inner) > 0) (*reads)[inner] += 1.0;
  }
  for (const PlanNodePtr& child : plan->children) {
    CountSegmentReads(memo, child, materialized, reads);
  }
}

}  // namespace

std::unordered_map<EqId, double> ExpectedSegmentReads(
    const Memo& memo, const ConsolidatedPlan& plan) {
  std::set<EqId> materialized;
  for (const auto& m : plan.materialized) materialized.insert(memo.Find(m.eq));
  std::unordered_map<EqId, double> reads;
  CountSegmentReads(memo, plan.root_plan, materialized, &reads);
  for (const auto& m : plan.materialized) {
    CountSegmentReads(memo, m.compute_plan, materialized, &reads);
  }
  return reads;
}

}  // namespace mqo
