#include "optimizer/batch_optimizer.h"

#include <cassert>

#include "common/hash.h"
#include "obs/obs.h"

namespace mqo {

BatchOptimizer::BatchOptimizer(Memo* memo, CostModel cost_model,
                               BatchOptimizerOptions options)
    : memo_(memo), cm_(cost_model), options_(options), stats_(memo, options.stats) {
  assert(memo_->root() >= 0 && "InsertBatch must run before optimization");
}

std::set<EqId> BatchOptimizer::Canonical(const std::set<EqId>& mat) const {
  std::set<EqId> out;
  for (EqId e : mat) out.insert(memo_->Find(e));
  return out;
}

uint64_t BatchOptimizer::SetKey(const std::set<EqId>& canonical) const {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (EqId e : canonical) h = HashCombine(h, static_cast<uint64_t>(e));
  return h;
}

std::pair<double, double> BatchOptimizer::Evaluate(PlanSearch* search,
                                                   const std::set<EqId>& mat) {
  const int64_t costings_before = search->num_costings();
  PlanNodePtr root = search->UsePlan(memo_->root(), {});
  assert(root != nullptr);
  double buc = root->total_cost;
  double bc = buc;
  for (EqId e : mat) {
    PlanNodePtr compute = search->ComputePlan(e, {});
    assert(compute != nullptr);
    bc += compute->total_cost + search->WriteCost(e);
  }
  num_costings_ += search->num_costings() - costings_before;
  return {bc, buc};
}

namespace {

/// Returns the single differing element if |a Δ b| == 1, else -1. `added` is
/// set to true when the element is in `a` but not `b`.
EqId SymmetricDiffOne(const std::set<EqId>& a, const std::set<EqId>& b,
                      bool* added) {
  if (a.size() == b.size() + 1) {
    for (EqId e : a) {
      if (b.count(e) == 0) {
        std::set<EqId> check = b;
        check.insert(e);
        if (check == a) {
          *added = true;
          return e;
        }
        return -1;
      }
    }
  } else if (b.size() == a.size() + 1) {
    bool dummy;
    EqId e = SymmetricDiffOne(b, a, &dummy);
    if (e >= 0) *added = false;
    return e;
  }
  return -1;
}

}  // namespace

PlanSearch* BatchOptimizer::AcquireSearch(const std::set<EqId>& mat) {
  if (options_.incremental) {
    for (PlanSearch* candidate : {base_.get(), scratch_.get()}) {
      if (candidate == nullptr) continue;
      if (candidate->materialized() == mat) {
        ++num_incremental_;
        if (candidate == base_.get()) {
          // Work on a copy so the pinned base stays clean for future deltas.
          scratch_ = std::make_unique<PlanSearch>(*candidate);
          return scratch_.get();
        }
        return candidate;
      }
      bool added = false;
      EqId delta = SymmetricDiffOne(mat, candidate->materialized(), &added);
      if (delta >= 0) {
        ++num_incremental_;
        if (candidate == base_.get()) {
          scratch_ = std::make_unique<PlanSearch>(*candidate);
          scratch_->ToggleMaterialized(delta, added);
          return scratch_.get();
        }
        candidate->ToggleMaterialized(delta, added);
        return candidate;
      }
    }
  }
  scratch_ = std::make_unique<PlanSearch>(memo_, &stats_, cm_, mat, options_.search);
  return scratch_.get();
}

void BatchOptimizer::SetIncrementalBase(const std::set<EqId>& mat) {
  if (!options_.incremental) return;
  std::set<EqId> s = Canonical(mat);
  if (base_ != nullptr && base_->materialized() == s) return;
  if (scratch_ != nullptr && scratch_->materialized() == s) {
    base_ = std::make_unique<PlanSearch>(*scratch_);
    return;
  }
  base_ = std::make_unique<PlanSearch>(memo_, &stats_, cm_, s, options_.search);
  (void)Evaluate(base_.get(), s);  // warm the caches for future deltas
}

double BatchOptimizer::BestCost(const std::set<EqId>& mat) {
  std::set<EqId> s = Canonical(mat);
  const uint64_t key = SetKey(s);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second.first;

  ++num_optimizations_;
  const int64_t incremental_before = num_incremental_;
  const int64_t costings_before = num_costings_;
  TraceSpan span(TracerOf(options_.obs), "plan_search", "optimizer");
  ScopedTimer timer(MetricsOf(options_.obs), "optimizer.plan_search_ms");
  PlanSearch* search = AcquireSearch(s);
  auto [bc, buc] = Evaluate(search, s);
  cache_.emplace(key, std::make_pair(bc, buc));
  if (span.active()) {
    span.AddNum("mat_set_size", static_cast<double>(s.size()));
    span.AddNum("incremental", num_incremental_ > incremental_before ? 1 : 0);
    span.AddNum("costings", static_cast<double>(num_costings_ - costings_before));
    span.AddNum("bc", bc);
    span.AddNum("buc", buc);
  }
  if (MetricsRegistry* m = MetricsOf(options_.obs)) {
    m->AddCounter("optimizer.plan_searches");
    if (num_incremental_ > incremental_before) {
      m->AddCounter("optimizer.incremental_reuses");
    }
    m->AddCounter("optimizer.costings",
                  static_cast<double>(num_costings_ - costings_before));
  }
  return bc;
}

double BatchOptimizer::BestUseCost(const std::set<EqId>& mat) {
  std::set<EqId> s = Canonical(mat);
  const uint64_t key = SetKey(s);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    BestCost(mat);
    it = cache_.find(key);
  }
  return it->second.second;
}

ConsolidatedPlan BatchOptimizer::Plan(const std::set<EqId>& mat) {
  std::set<EqId> s = Canonical(mat);
  PlanSearch search(memo_, &stats_, cm_, s, options_.search);
  ConsolidatedPlan out;
  out.root_plan = search.UsePlan(memo_->root(), {});
  assert(out.root_plan != nullptr);
  out.best_use_cost = out.root_plan->total_cost;
  out.best_cost = out.best_use_cost;
  for (EqId e : s) {
    ConsolidatedPlan::MatNode node;
    node.eq = e;
    node.compute_plan = search.ComputePlan(e, {});
    assert(node.compute_plan != nullptr);
    node.write_cost = search.WriteCost(e);
    out.best_cost += node.compute_plan->total_cost + node.write_cost;
    out.materialized.push_back(std::move(node));
  }
  out.mat_cost = out.best_cost - out.best_use_cost;
  return out;
}

double BatchOptimizer::StandaloneMatCost(EqId eq) {
  PlanSearch search(memo_, &stats_, cm_, {});
  PlanNodePtr compute = search.ComputePlan(memo_->Find(eq), {});
  assert(compute != nullptr);
  return compute->total_cost + search.WriteCost(eq);
}

double BatchOptimizer::MatFootprintBytes(EqId eq) {
  return stats_.ClassStats(memo_->Find(eq)).SizeBytes();
}

namespace {

void CountSegmentReads(const Memo& memo, const PlanNodePtr& plan,
                       const std::set<EqId>& materialized,
                       std::unordered_map<EqId, double>* reads) {
  if (plan == nullptr) return;
  if (plan->op == PhysOp::kReadMaterialized) {
    (*reads)[memo.Find(plan->eq)] += 1.0;
  } else if (plan->logical_op >= 0 && plan->children.size() == 1 &&
             (plan->op == PhysOp::kBlockNLJoin ||
              plan->op == PhysOp::kIndexNLJoin ||
              plan->op == PhysOp::kMergeJoin)) {
    // A join whose inner side is not a plan child rescans it as a side
    // input; the executors serve that from the store when materialized.
    const MemoOp& op = memo.op(plan->logical_op);
    const EqId inner = memo.Find(op.children[1]);
    if (materialized.count(inner) > 0) (*reads)[inner] += 1.0;
  }
  for (const PlanNodePtr& child : plan->children) {
    CountSegmentReads(memo, child, materialized, reads);
  }
}

}  // namespace

std::unordered_map<EqId, double> ExpectedSegmentReads(
    const Memo& memo, const ConsolidatedPlan& plan) {
  std::set<EqId> materialized;
  for (const auto& m : plan.materialized) materialized.insert(memo.Find(m.eq));
  std::unordered_map<EqId, double> reads;
  CountSegmentReads(memo, plan.root_plan, materialized, &reads);
  for (const auto& m : plan.materialized) {
    CountSegmentReads(memo, m.compute_plan, materialized, &reads);
  }
  return reads;
}

}  // namespace mqo
