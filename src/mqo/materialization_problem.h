// Bridges the batch optimizer's bc(S) oracle and the submodular layer: the
// materialization-benefit function mb(S) = bc(∅) − bc(S) over the universe of
// shareable equivalence nodes (Section 2.4).
//
// Memory governance (CostParams::mat_budget_bytes > 0) adds two layers of
// cost awareness on top of the paper's formulation:
//   - admission control: a shareable node whose standalone recomputation is
//     cheaper than the spill round trip of its footprint (equivalently,
//     whose compute cost is below one sequential read of its result) can
//     never pay for the budget pressure it creates, so it is refused from
//     the universe up front;
//   - spill penalty: every evaluated set S is charged
//     CostModel::SpillPenalty(footprint(S)) — the disk round trip of the
//     bytes by which S overflows the store budget — so the greedy drivers
//     see oversized sets as genuinely more expensive.
// With no budget both layers are inert and the problem is exactly the
// paper's.

#ifndef MQO_MQO_MATERIALIZATION_PROBLEM_H_
#define MQO_MQO_MATERIALIZATION_PROBLEM_H_

#include <memory>
#include <set>
#include <vector>

#include "optimizer/batch_optimizer.h"
#include "submodular/decomposition.h"
#include "submodular/set_function.h"

namespace mqo {

/// The MQO instance as a submodular-maximization problem. Universe element i
/// corresponds to shareable node universe()[i].
class MaterializationProblem {
 public:
  explicit MaterializationProblem(BatchOptimizer* optimizer);

  /// Shareable equivalence nodes, index-aligned with the set functions.
  /// Under a budget this is the admitted subset; see admission_refused().
  const std::vector<EqId>& universe() const { return universe_; }
  int universe_size() const { return static_cast<int>(universe_.size()); }

  /// Shareable nodes the admission control refused (empty without a budget).
  const std::vector<EqId>& admission_refused() const { return refused_; }

  /// Estimated store footprint of S in bytes (sum of segment footprints).
  double FootprintBytes(const std::set<EqId>& eqs) const;

  /// CostModel::SpillPenalty of S's footprint (0 without a budget).
  double SpillPenalty(const std::set<EqId>& eqs) const;

  /// Translates an index set into equivalence-node ids.
  std::set<EqId> ToEqIds(const ElementSet& s) const;

  /// mb(S) = bc(∅) − bc(S); normalized (mb(∅)=0), submodular under the
  /// monotonicity heuristic.
  const SetFunction& benefit() const { return *benefit_; }

  /// bc(S) itself, for the cost-minimizing Greedy of Roy et al.
  const SetFunction& best_cost() const { return *best_cost_; }

  /// bc(∅): the stand-alone Volcano (no-MQO) plan cost.
  double VolcanoCost() { return optimizer_->BestCost({}); }

  /// Proposition 1 decomposition c*(e) = mb(U\{e}) − mb(U); n+1 bc calls.
  Decomposition CanonicalDecomposition();

  /// Heuristic "use-benefit" decomposition: c(e) = cost of computing and
  /// writing node e with nothing else materialized. Cheap (n standalone
  /// optimizations of single nodes) but without the Prop 2 optimality.
  Decomposition UseBenefitDecomposition();

  BatchOptimizer* optimizer() { return optimizer_; }

 private:
  BatchOptimizer* optimizer_;
  std::vector<EqId> universe_;
  std::vector<EqId> refused_;  ///< Nodes refused by admission control.
  std::unique_ptr<SetFunction> benefit_;
  std::unique_ptr<SetFunction> best_cost_;
};

}  // namespace mqo

#endif  // MQO_MQO_MATERIALIZATION_PROBLEM_H_
