// Bridges the batch optimizer's bc(S) oracle and the submodular layer: the
// materialization-benefit function mb(S) = bc(∅) − bc(S) over the universe of
// shareable equivalence nodes (Section 2.4).

#ifndef MQO_MQO_MATERIALIZATION_PROBLEM_H_
#define MQO_MQO_MATERIALIZATION_PROBLEM_H_

#include <memory>
#include <set>
#include <vector>

#include "optimizer/batch_optimizer.h"
#include "submodular/decomposition.h"
#include "submodular/set_function.h"

namespace mqo {

/// The MQO instance as a submodular-maximization problem. Universe element i
/// corresponds to shareable node universe()[i].
class MaterializationProblem {
 public:
  explicit MaterializationProblem(BatchOptimizer* optimizer);

  /// Shareable equivalence nodes, index-aligned with the set functions.
  const std::vector<EqId>& universe() const { return universe_; }
  int universe_size() const { return static_cast<int>(universe_.size()); }

  /// Translates an index set into equivalence-node ids.
  std::set<EqId> ToEqIds(const ElementSet& s) const;

  /// mb(S) = bc(∅) − bc(S); normalized (mb(∅)=0), submodular under the
  /// monotonicity heuristic.
  const SetFunction& benefit() const { return *benefit_; }

  /// bc(S) itself, for the cost-minimizing Greedy of Roy et al.
  const SetFunction& best_cost() const { return *best_cost_; }

  /// bc(∅): the stand-alone Volcano (no-MQO) plan cost.
  double VolcanoCost() { return optimizer_->BestCost({}); }

  /// Proposition 1 decomposition c*(e) = mb(U\{e}) − mb(U); n+1 bc calls.
  Decomposition CanonicalDecomposition();

  /// Heuristic "use-benefit" decomposition: c(e) = cost of computing and
  /// writing node e with nothing else materialized. Cheap (n standalone
  /// optimizations of single nodes) but without the Prop 2 optimality.
  Decomposition UseBenefitDecomposition();

  BatchOptimizer* optimizer() { return optimizer_; }

 private:
  BatchOptimizer* optimizer_;
  std::vector<EqId> universe_;
  std::unique_ptr<SetFunction> benefit_;
  std::unique_ptr<SetFunction> best_cost_;
};

}  // namespace mqo

#endif  // MQO_MQO_MATERIALIZATION_PROBLEM_H_
