// One-call convenience facade: SQL batch in, consolidated MQO plan out.
//
//   Catalog catalog = MakeTpcdCatalog(1);
//   auto outcome = OptimizeSqlBatch(catalog, {"SELECT ...", "SELECT ..."});
//   outcome.ValueOrDie().Print();
//
// Wires together the parser, memo, transformation rules, batch optimizer and
// the MarginalGreedy algorithm with sensible defaults; every knob is still
// reachable through the lower layers.

#ifndef MQO_MQO_FACADE_H_
#define MQO_MQO_FACADE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "lqdag/rules.h"
#include "mqo/mqo_algorithms.h"
#include "parser/parser.h"
#include "vexec/backend.h"

namespace mqo {

/// Options for OptimizeSqlBatch / OptimizeBatch.
struct MqoOptions {
  CostParams cost_params;
  /// Which selection algorithm to run.
  enum class Algorithm { kMarginalGreedy, kGreedy, kVolcano } algorithm =
      Algorithm::kMarginalGreedy;
  MarginalGreedyMqoOptions marginal_options;
  ExpansionOptions expansion;
  /// Which engine OptimizeAndExecute* runs the consolidated plan on.
  ExecBackend backend = ExecBackend::kRow;
  /// Vectorized-engine execution knobs: `exec.num_threads` > 1 runs every
  /// pipeline — scans, filters, join build/probe, aggregation — morsel-
  /// parallel (results are identical for every value). The row engine is
  /// serial but honours the store-governance knobs below.
  ExecOptions exec;
  /// Byte budget of the executors' materialized-segment store; 0 =
  /// unlimited. A non-zero budget flows to both sides of the system: the
  /// optimizer (cost_params.mat_budget_bytes — admission control plus a
  /// spill penalty on oversized materialized sets) and the executors
  /// (exec.mat_budget_bytes — eviction and disk spill at run time).
  /// Explicitly-set cost_params/exec budgets win over this convenience knob.
  size_t mat_budget_bytes = 0;
};

/// Result of a facade optimization.
struct MqoOutcome {
  MqoResult result;                    ///< Costs, chosen nodes, timings.
  std::string consolidated_plan;       ///< Rendered root plan.
  std::vector<std::string> materialized_plans;  ///< One per materialized node.
  int dag_classes = 0;
  int dag_ops = 0;
  int shareable_nodes = 0;   ///< Shareable nodes in the DAG (budget-independent).
  /// Shareable nodes the budget's admission control refused (0 without a
  /// budget); the algorithms ran over shareable_nodes − admission_refused.
  int admission_refused = 0;

  /// Writes a human-readable report to `os`.
  void Print(std::ostream& os) const;
  /// Same, to std::cout.
  void Print() const;
};

/// Parses each SQL string against `catalog`, builds and expands the combined
/// LQDAG, and runs the selected MQO algorithm. Fails on the first parse or
/// bind error.
Result<MqoOutcome> OptimizeSqlBatch(const Catalog& catalog,
                                    const std::vector<std::string>& sql_batch,
                                    const MqoOptions& options = {});

/// Same, starting from already-built logical trees.
Result<MqoOutcome> OptimizeBatch(const Catalog& catalog,
                                 const std::vector<LogicalExprPtr>& queries,
                                 const MqoOptions& options = {});

/// Result of a facade optimize-and-execute run.
struct MqoExecutionOutcome {
  MqoOutcome optimization;
  ExecBackend backend = ExecBackend::kRow;  ///< Engine that produced results.
  std::vector<NamedRows> results;  ///< One per query, canonicalized.
};

/// Optimizes the batch and executes the consolidated plan against `data`
/// with the engine selected by `options.backend`.
Result<MqoExecutionOutcome> OptimizeAndExecuteSqlBatch(
    const Catalog& catalog, const std::vector<std::string>& sql_batch,
    const DataSet& data, const MqoOptions& options = {});

/// Same, starting from already-built logical trees.
Result<MqoExecutionOutcome> OptimizeAndExecuteBatch(
    const Catalog& catalog, const std::vector<LogicalExprPtr>& queries,
    const DataSet& data, const MqoOptions& options = {});

}  // namespace mqo

#endif  // MQO_MQO_FACADE_H_
