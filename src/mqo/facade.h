// One-call convenience facade: SQL batch in, consolidated MQO plan out.
//
//   Catalog catalog = MakeTpcdCatalog(1);
//   auto outcome = OptimizeSqlBatch(catalog, {"SELECT ...", "SELECT ..."});
//   outcome.ValueOrDie().Print();
//
// Wires together the parser, memo, transformation rules, batch optimizer and
// the MarginalGreedy algorithm with sensible defaults; every knob is still
// reachable through the lower layers.

#ifndef MQO_MQO_FACADE_H_
#define MQO_MQO_FACADE_H_

#include <atomic>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cost/stats.h"
#include "lqdag/rules.h"
#include "mqo/mqo_algorithms.h"
#include "obs/explain.h"
#include "obs/obs.h"
#include "parser/parser.h"
#include "storage/segment_cache.h"
#include "vexec/backend.h"

namespace mqo {

/// Options for OptimizeSqlBatch / OptimizeBatch.
struct MqoOptions {
  CostParams cost_params;
  /// Which selection algorithm to run.
  enum class Algorithm { kMarginalGreedy, kGreedy, kVolcano } algorithm =
      Algorithm::kMarginalGreedy;
  MarginalGreedyMqoOptions marginal_options;
  ExpansionOptions expansion;
  /// Which engine OptimizeAndExecute* runs the consolidated plan on.
  ExecBackend backend = ExecBackend::kRow;
  /// Vectorized-engine execution knobs: `exec.num_threads` > 1 runs every
  /// pipeline — scans, filters, join build/probe, aggregation — morsel-
  /// parallel (results are identical for every value). The row engine is
  /// serial but honours the store-governance knobs below. The same knob
  /// also fans the optimizer's greedy candidate evaluations across the
  /// worker pool (BatchOptimizerOptions::num_threads); plans, picks, and
  /// costs stay bit-identical at every thread count.
  ExecOptions exec;
  /// Byte budget of the executors' materialized-segment store; 0 =
  /// unlimited. A non-zero budget flows to both sides of the system: the
  /// optimizer (cost_params.mat_budget_bytes — admission control plus a
  /// spill penalty on oversized materialized sets) and the executors
  /// (exec.mat_budget_bytes — eviction and disk spill at run time).
  /// Explicitly-set cost_params/exec budgets win over this convenience knob.
  size_t mat_budget_bytes = 0;
  /// Statistics source of the optimizer (cost/stats.h): kCatalogGuess
  /// reproduces the paper-exact estimates; kCollected analyzes the executed
  /// DataSet (lazily, on first optimization) into sampled histograms and
  /// distinct sketches. kDefault resolves via the MQO_STATS_MODE environment
  /// variable ("collected"/"catalog"), else kCatalogGuess. Collection needs
  /// data, so OptimizeSqlBatch/OptimizeBatch use kCollected only when
  /// `table_stats` is supplied.
  StatsMode stats_mode = StatsMode::kDefault;
  /// Externally-owned collected statistics to reuse across calls (an
  /// MqoSession shares one registry so tables analyze once per session).
  /// When null and stats_mode resolves to kCollected, the execute paths
  /// analyze into a call-local registry.
  const TableStatsRegistry* table_stats = nullptr;
  /// Observed cardinalities from earlier executions (MqoExecutionOutcome::
  /// feedback); matched by structural fingerprint, they override the
  /// estimator's row counts so this optimization sees reality.
  const CardinalityFeedback* feedback = nullptr;
  /// Observability (obs/obs.h): metrics and tracing for the whole
  /// optimize-and-execute run. Knobs left unset here pick up the MQO_METRICS
  /// / MQO_TRACE / MQO_TRACE_FILE environment overrides; when trace_path is
  /// set the execute paths write the Chrome trace JSON there after the batch.
  ObsOptions obs;
  /// Cross-batch semantic segment cache (MqoSession only): segments
  /// materialized by one batch are served — by structural class fingerprint —
  /// to later and concurrent batches of the same session, and the optimizer
  /// treats already-cached classes as zero-cost materialization candidates.
  /// Correctness is unaffected: a cached segment is only served when its
  /// fingerprint and the versions of every base table it was computed from
  /// still match (storage/segment_cache.h).
  bool shared_segment_cache = true;
  /// Byte budget of the session's shared segment cache; 0 falls back to the
  /// executor store budget (mat_budget_bytes / MQO_MAT_BUDGET_BYTES), which
  /// unset means unlimited.
  size_t shared_cache_budget_bytes = 0;
};

/// Result of a facade optimization.
struct MqoOutcome {
  MqoResult result;                    ///< Costs, chosen nodes, timings.
  std::string consolidated_plan;       ///< Rendered root plan.
  std::vector<std::string> materialized_plans;  ///< One per materialized node.
  int dag_classes = 0;
  int dag_ops = 0;
  int shareable_nodes = 0;   ///< Shareable nodes in the DAG (budget-independent).
  /// Shareable nodes the budget's admission control refused (0 without a
  /// budget); the algorithms ran over shareable_nodes − admission_refused.
  int admission_refused = 0;
  /// Statistics source the optimization actually ran with (kDefault
  /// resolved; kCollected degraded to kCatalogGuess when no data/registry
  /// was available).
  StatsMode stats_mode = StatsMode::kCatalogGuess;
  /// Optimizer-side snapshot of every chosen materialization (estimated
  /// rows, expected reads, footprint, per-class predicted benefit), eq-
  /// sorted. The execute paths join these with runtime telemetry into the
  /// EXPLAIN ANALYZE report.
  std::vector<MatClassEstimate> class_estimates;

  /// Writes a human-readable report to `os`.
  void Print(std::ostream& os) const;
  /// Same, to std::cout.
  void Print() const;
};

/// Parses each SQL string against `catalog`, builds and expands the combined
/// LQDAG, and runs the selected MQO algorithm. Fails on the first parse or
/// bind error.
Result<MqoOutcome> OptimizeSqlBatch(const Catalog& catalog,
                                    const std::vector<std::string>& sql_batch,
                                    const MqoOptions& options = {});

/// Same, starting from already-built logical trees.
Result<MqoOutcome> OptimizeBatch(const Catalog& catalog,
                                 const std::vector<LogicalExprPtr>& queries,
                                 const MqoOptions& options = {});

/// Result of a facade optimize-and-execute run.
struct MqoExecutionOutcome {
  MqoOutcome optimization;
  ExecBackend backend = ExecBackend::kRow;  ///< Engine that produced results.
  std::vector<NamedRows> results;  ///< One per query, canonicalized.
  /// Observed cardinalities of the run's materialized segments (keyed by
  /// structural fingerprint). Pass as MqoOptions::feedback — or run batches
  /// through an MqoSession — so later optimizations estimate against
  /// reality.
  CardinalityFeedback feedback;
  /// Segment-store accounting of the run (hits, evictions, spill traffic).
  MatStoreStats store_stats;
  /// Per materialized class: the optimizer's estimate joined with what the
  /// executor measured, eq-sorted. Empty when nothing was materialized.
  std::vector<ExplainEntry> explain;
  /// RenderExplainAnalyze(explain): estimated vs actual rows, expected vs
  /// actual reads, predicted vs realized benefit, per class plus totals.
  std::string explain_analyze;
  /// Chrome trace_event JSON of the run (empty unless options.obs resolved
  /// to tracing on). Load in chrome://tracing or Perfetto.
  std::string trace_json;
  /// MetricsRegistry::TextReport() of the run (empty unless metrics on).
  std::string metrics_report;
  /// Session-issued batch id (0 outside an MqoSession). Tags the run's trace
  /// scope — each batch exports into its own Chrome process lane — and the
  /// per-batch trace file suffix of concurrent session runs.
  uint64_t batch_id = 0;
  /// Materializations this run served from the session's cross-batch segment
  /// cache instead of computing (0 without a session or shared cache).
  int64_t cross_batch_hits = 0;
};

/// Optimizes the batch and executes the consolidated plan against `data`
/// with the engine selected by `options.backend`.
Result<MqoExecutionOutcome> OptimizeAndExecuteSqlBatch(
    const Catalog& catalog, const std::vector<std::string>& sql_batch,
    const DataSet& data, const MqoOptions& options = {});

/// Same, starting from already-built logical trees.
Result<MqoExecutionOutcome> OptimizeAndExecuteBatch(
    const Catalog& catalog, const std::vector<LogicalExprPtr>& queries,
    const DataSet& data, const MqoOptions& options = {});

/// A multi-batch optimization session over one catalog + dataset: collected
/// statistics are shared across batches (each table analyzes once, lazily),
/// every batch's observed materialized-segment cardinalities feed the
/// next batch's optimization — re-seeding row estimates, and through them
/// the footprints, spill penalties and eviction weights the memory-governed
/// store is driven by — and segments materialized by one batch are served to
/// later batches from a shared semantic cache, keyed by structural class
/// fingerprint. The closed loop of optimize → execute → observe.
///
///   MqoSession session(&catalog, &data, options);
///   auto first  = session.Run(batch1);   // estimates from stats collection
///   auto second = session.Run(batch2);   // + observed cardinalities and
///                                        //   cached segments of run 1
///
/// Run is safe to call from concurrent client threads: the shared state
/// (statistics registry, feedback, segment cache) is internally synchronized,
/// each run gets its own memo/executor/store, and every run is issued a batch
/// id that scopes its trace export. Results are bag-equal to running the same
/// batches serially in any order.
class MqoSession {
 public:
  /// `catalog` and `data` must outlive the session.
  MqoSession(const Catalog* catalog, const DataSet* data,
             MqoOptions options = {});

  /// Optimizes and executes one SQL batch with the session's accumulated
  /// statistics, feedback and cached segments, then folds the run's
  /// observations (and freshly materialized segments) back in.
  Result<MqoExecutionOutcome> Run(const std::vector<std::string>& sql_batch);

  /// Same, starting from already-built logical trees.
  Result<MqoExecutionOutcome> Run(const std::vector<LogicalExprPtr>& queries);

  /// Snapshot of the cardinalities observed so far (across every Run).
  CardinalityFeedback feedback() const {
    std::lock_guard<std::mutex> lock(mu_);
    return feedback_;
  }

  /// The session's collected-statistics registry (internally synchronized).
  const TableStatsRegistry& table_stats() const { return registry_; }

  /// The session's cross-batch segment cache; null when
  /// MqoOptions::shared_segment_cache is false.
  SharedSegmentCache* segment_cache() { return cache_.get(); }
  const SharedSegmentCache* segment_cache() const { return cache_.get(); }

  /// Session-lifetime observability scope: per-run wall times land in the
  /// "session.run_ms" timing metric (log-spaced histogram → percentiles via
  /// MetricsRegistry::QuantileMs) and segment-cache counters accumulate here
  /// across runs. Null when MqoOptions::obs resolves to everything-off.
  ObsContext* session_obs() {
    return session_obs_.any_enabled() ? &session_obs_ : nullptr;
  }

  /// Mutation hook for one base table (append, in-place update): drops its
  /// collected statistics and every cached segment computed from it, so the
  /// next lookup re-analyzes and the next materialization recomputes.
  /// Observed cardinalities stay — they are advisory estimates, refreshed
  /// last-write-wins by subsequent runs. Call quiesced (no Run in flight).
  void InvalidateTable(const std::string& table);

  /// Data-regeneration hook: drops collected statistics, observed
  /// cardinalities and cached segments (they describe data that no longer
  /// exists). Call quiesced (no Run in flight).
  void InvalidateStats();

 private:
  const Catalog* catalog_;
  const DataSet* data_;
  MqoOptions options_;
  /// Declared before cache_: the cache's store reports into this scope.
  ObsContext session_obs_;
  TableStatsRegistry registry_;
  std::unique_ptr<SharedSegmentCache> cache_;
  mutable std::mutex mu_;              ///< Guards feedback_.
  CardinalityFeedback feedback_;
  std::atomic<uint64_t> next_batch_id_{1};
};

}  // namespace mqo

#endif  // MQO_MQO_FACADE_H_
