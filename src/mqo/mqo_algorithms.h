// High-level MQO drivers: stand-alone Volcano (no MQO), the Greedy of Roy et
// al. [23], the paper's MarginalGreedy (with decomposition/lazy options), a
// materialize-everything baseline (Silva et al.-style), and exhaustive search
// for small DAGs. Each returns the consolidated plan cost and bookkeeping
// the experiment harness prints.

#ifndef MQO_MQO_MQO_ALGORITHMS_H_
#define MQO_MQO_MQO_ALGORITHMS_H_

#include <set>
#include <string>

#include "mqo/materialization_problem.h"
#include "submodular/algorithms.h"

namespace mqo {

/// Which f = fM − c decomposition MarginalGreedy runs with.
enum class DecompositionKind {
  kCanonical,   ///< Proposition 1 (n+1 bc calls; provably best ratio).
  kUseBenefit,  ///< c(e) = standalone materialization cost of e (heuristic).
};

/// Result of one MQO algorithm run.
struct MqoResult {
  std::string algorithm;
  std::set<EqId> materialized;
  double total_cost = 0.0;        ///< bc(materialized), ms of estimated work.
  double volcano_cost = 0.0;      ///< bc(∅).
  double benefit = 0.0;           ///< volcano_cost − total_cost.
  int num_materialized = 0;
  double optimization_time_ms = 0.0;  ///< Wall-clock optimization time.
  int64_t optimizations = 0;      ///< bc() cache misses attributable to run.
  int64_t function_evals = 0;     ///< Greedy-level marginal evaluations.
};

/// Options for RunMarginalGreedy.
struct MarginalGreedyMqoOptions {
  DecompositionKind decomposition = DecompositionKind::kCanonical;
  bool lazy = true;
  int cardinality_limit = -1;
  bool universe_reduction = false;
};

/// No MQO: locally optimal plans only (bc(∅)).
MqoResult RunVolcano(MaterializationProblem* problem);

/// Algorithm 1 (Roy et al.): iteratively materialize the node minimizing
/// bc(X ∪ {x}). `lazy` applies their heap optimization (the monotonicity
/// heuristic).
MqoResult RunGreedy(MaterializationProblem* problem, bool lazy = true);

/// Algorithm 2 (this paper): MarginalGreedy over the chosen decomposition.
MqoResult RunMarginalGreedy(MaterializationProblem* problem,
                            const MarginalGreedyMqoOptions& options = {});

/// Materialize every shareable node (the heuristic of Silva et al. [26],
/// which the paper notes "can be horribly inefficient").
MqoResult RunMaterializeAll(MaterializationProblem* problem);

/// Exhaustive optimum over all subsets of shareable nodes (universe ≤ 20).
MqoResult RunExhaustive(MaterializationProblem* problem);

}  // namespace mqo

#endif  // MQO_MQO_MQO_ALGORITHMS_H_
