// Concurrent MQO service driver: mixed multi-client traffic against one
// long-lived MqoSession.
//
// RunServiceTraffic spawns one thread per client; each client generates its
// own batches (via the caller-supplied generator) and submits them through
// MqoSession::Run, which is concurrency-safe — the session's statistics
// registry, cardinality feedback and cross-batch segment cache are shared by
// every in-flight batch. The report records, per batch, what the session did
// (wall time, cross-batch cache hits, materialization count) and optionally
// the query results themselves, so differential tests can check the
// service-level invariant: concurrent execution is bag-equal to the same
// batches run serially.

#ifndef MQO_MQO_SERVICE_H_
#define MQO_MQO_SERVICE_H_

#include <functional>
#include <string>
#include <vector>

#include "mqo/facade.h"

namespace mqo {

/// Traffic shape of one RunServiceTraffic drive.
struct ServiceTrafficOptions {
  int num_clients = 1;
  int batches_per_client = 1;
  /// Retain every batch's query results in the report (differential tests
  /// compare them against a serial replay); benches leave this off so the
  /// drive measures the service, not result retention.
  bool keep_results = false;
};

/// What one client batch did.
struct ServiceBatchResult {
  int client = 0;
  int batch_index = 0;    ///< Position in the client's own sequence.
  uint64_t batch_id = 0;  ///< Session-issued id (trace scope / Chrome pid).
  bool ok = false;
  std::string error;      ///< Status string when !ok.
  int64_t cross_batch_hits = 0;  ///< Segments served from the shared cache.
  int num_materialized = 0;
  double wall_ms = 0.0;   ///< Submit-to-result latency of this batch.
  std::vector<NamedRows> results;  ///< Only when keep_results.
};

/// Aggregate of one traffic drive.
struct ServiceReport {
  /// Every client batch, ordered by (client, batch_index) — deterministic
  /// regardless of how the runs interleaved.
  std::vector<ServiceBatchResult> batches;
  int failed = 0;          ///< Batches whose Run returned an error.
  double wall_ms = 0.0;    ///< Whole drive, first submit to last join.
  double batches_per_second = 0.0;
  int64_t cross_batch_hits = 0;  ///< Sum over batches.
};

/// Builds the batch that client `client` submits as its `batch_index`-th
/// request. Called on that client's thread; must be safe to invoke
/// concurrently from different threads.
using ServiceBatchGenerator =
    std::function<std::vector<LogicalExprPtr>(int client, int batch_index)>;

/// Drives `options.num_clients` concurrent client threads against `session`,
/// each submitting `options.batches_per_client` generated batches
/// back-to-back. Blocks until every client drains.
ServiceReport RunServiceTraffic(MqoSession* session,
                                const ServiceBatchGenerator& generate,
                                const ServiceTrafficOptions& options);

}  // namespace mqo

#endif  // MQO_MQO_SERVICE_H_
