#include "mqo/facade.h"

#include <algorithm>
#include <iostream>

#include "common/string_util.h"
#include "lqdag/rules.h"

namespace mqo {

void MqoOutcome::Print() const { Print(std::cout); }

void MqoOutcome::Print(std::ostream& os) const {
  os << "algorithm        : " << result.algorithm << "\n";
  os << "DAG              : " << dag_classes << " classes, " << dag_ops
     << " operators, " << shareable_nodes << " shareable";
  if (admission_refused > 0) {
    os << " (" << admission_refused << " refused by budget admission)";
  }
  os << "\n";
  os << "no-MQO cost      : " << FormatCost(result.volcano_cost / 1000.0)
     << " s\n";
  os << "consolidated cost: " << FormatCost(result.total_cost / 1000.0)
     << " s (" << FormatDouble(100.0 * result.benefit /
                                   std::max(result.volcano_cost, 1e-9), 1)
     << "% benefit, " << result.num_materialized << " node(s) materialized)\n";
  os << "optimization time: " << FormatDouble(result.optimization_time_ms, 2)
     << " ms (" << result.optimizations << " plan searches)\n";
  os << "\nconsolidated plan:\n" << consolidated_plan;
  for (const auto& p : materialized_plans) {
    os << "\nmaterialized node plan:\n" << p;
  }
}

namespace {

/// Spreads MqoOptions::mat_budget_bytes to the optimizer's cost params and
/// the executors' store options, unless those were set explicitly.
MqoOptions WithBudgetApplied(const MqoOptions& options) {
  MqoOptions out = options;
  if (options.mat_budget_bytes > 0) {
    if (out.cost_params.mat_budget_bytes <= 0.0) {
      out.cost_params.mat_budget_bytes =
          static_cast<double>(options.mat_budget_bytes);
    }
    if (out.exec.mat_budget_bytes == 0) {
      out.exec.mat_budget_bytes = options.mat_budget_bytes;
    }
  }
  return out;
}

/// Parses every SQL string of the batch, failing on the first error.
Result<std::vector<LogicalExprPtr>> ParseBatch(
    const Catalog& catalog, const std::vector<std::string>& sql_batch) {
  std::vector<LogicalExprPtr> queries;
  for (const auto& sql : sql_batch) {
    MQO_ASSIGN_OR_RETURN(LogicalExprPtr tree, ParseQuery(sql, catalog));
    queries.push_back(std::move(tree));
  }
  return queries;
}

/// Shared orchestration: inserts the batch into `memo`, expands, runs the
/// selected algorithm, and renders the chosen consolidated plan. The memo is
/// caller-owned so execution paths can keep it alive alongside the plan.
Result<ConsolidatedPlan> OptimizeIntoMemo(
    Memo* memo, const std::vector<LogicalExprPtr>& queries,
    const MqoOptions& options, MqoOutcome* outcome) {
  if (queries.empty()) {
    return Status::InvalidArgument("empty query batch");
  }
  memo->InsertBatch(queries);
  auto expanded = ExpandMemo(memo, options.expansion);
  MQO_RETURN_NOT_OK(expanded.status());

  BatchOptimizer optimizer(memo, CostModel(options.cost_params));
  MaterializationProblem problem(&optimizer);

  outcome->dag_classes = expanded.ValueOrDie().classes_after;
  outcome->dag_ops = expanded.ValueOrDie().ops_after;
  outcome->admission_refused =
      static_cast<int>(problem.admission_refused().size());
  // The DAG's shareable-node count, independent of the budget's admission
  // filter (the algorithms ran over the admitted subset).
  outcome->shareable_nodes =
      problem.universe_size() + outcome->admission_refused;
  switch (options.algorithm) {
    case MqoOptions::Algorithm::kMarginalGreedy:
      outcome->result = RunMarginalGreedy(&problem, options.marginal_options);
      break;
    case MqoOptions::Algorithm::kGreedy:
      outcome->result = RunGreedy(&problem);
      break;
    case MqoOptions::Algorithm::kVolcano:
      outcome->result = RunVolcano(&problem);
      break;
  }
  ConsolidatedPlan plan = optimizer.Plan(outcome->result.materialized);
  outcome->consolidated_plan = PlanToString(plan.root_plan);
  for (const auto& m : plan.materialized) {
    outcome->materialized_plans.push_back(PlanToString(m.compute_plan));
  }
  return plan;
}

}  // namespace

Result<MqoOutcome> OptimizeBatch(const Catalog& catalog,
                                 const std::vector<LogicalExprPtr>& queries,
                                 const MqoOptions& options) {
  const MqoOptions effective = WithBudgetApplied(options);
  Memo memo(&catalog);
  MqoOutcome outcome;
  MQO_ASSIGN_OR_RETURN(ConsolidatedPlan plan,
                       OptimizeIntoMemo(&memo, queries, effective, &outcome));
  (void)plan;
  return outcome;
}

Result<MqoExecutionOutcome> OptimizeAndExecuteBatch(
    const Catalog& catalog, const std::vector<LogicalExprPtr>& queries,
    const DataSet& data, const MqoOptions& options) {
  const MqoOptions effective = WithBudgetApplied(options);
  Memo memo(&catalog);
  MqoExecutionOutcome outcome;
  outcome.backend = effective.backend;
  MQO_ASSIGN_OR_RETURN(
      ConsolidatedPlan plan,
      OptimizeIntoMemo(&memo, queries, effective, &outcome.optimization));
  MQO_ASSIGN_OR_RETURN(
      outcome.results,
      ExecuteConsolidatedWith(effective.backend, &memo, &data, plan,
                              effective.exec));
  return outcome;
}

Result<MqoExecutionOutcome> OptimizeAndExecuteSqlBatch(
    const Catalog& catalog, const std::vector<std::string>& sql_batch,
    const DataSet& data, const MqoOptions& options) {
  MQO_ASSIGN_OR_RETURN(std::vector<LogicalExprPtr> queries,
                       ParseBatch(catalog, sql_batch));
  return OptimizeAndExecuteBatch(catalog, queries, data, options);
}

Result<MqoOutcome> OptimizeSqlBatch(const Catalog& catalog,
                                    const std::vector<std::string>& sql_batch,
                                    const MqoOptions& options) {
  MQO_ASSIGN_OR_RETURN(std::vector<LogicalExprPtr> queries,
                       ParseBatch(catalog, sql_batch));
  return OptimizeBatch(catalog, queries, options);
}

}  // namespace mqo
