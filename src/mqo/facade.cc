#include "mqo/facade.h"

#include <algorithm>
#include <iostream>

#include <fstream>
#include <unordered_map>

#include "common/string_util.h"
#include "lqdag/rules.h"
#include "obs/clock.h"
#include "stats/feedback.h"
#include "storage/segment_cache.h"

namespace mqo {

void MqoOutcome::Print() const { Print(std::cout); }

void MqoOutcome::Print(std::ostream& os) const {
  os << "algorithm        : " << result.algorithm << "\n";
  os << "statistics       : " << StatsModeToString(stats_mode) << "\n";
  os << "DAG              : " << dag_classes << " classes, " << dag_ops
     << " operators, " << shareable_nodes << " shareable";
  if (admission_refused > 0) {
    os << " (" << admission_refused << " refused by budget admission)";
  }
  os << "\n";
  os << "no-MQO cost      : " << FormatCost(result.volcano_cost / 1000.0)
     << " s\n";
  os << "consolidated cost: " << FormatCost(result.total_cost / 1000.0)
     << " s (" << FormatDouble(100.0 * result.benefit /
                                   std::max(result.volcano_cost, 1e-9), 1)
     << "% benefit, " << result.num_materialized << " node(s) materialized)\n";
  os << "optimization time: " << FormatDouble(result.optimization_time_ms, 2)
     << " ms (" << result.optimizations << " plan searches)\n";
  os << "\nconsolidated plan:\n" << consolidated_plan;
  for (const auto& p : materialized_plans) {
    os << "\nmaterialized node plan:\n" << p;
  }
}

namespace {

/// Spreads MqoOptions::mat_budget_bytes to the optimizer's cost params and
/// the executors' store options, unless those were set explicitly.
MqoOptions WithBudgetApplied(const MqoOptions& options) {
  MqoOptions out = options;
  if (options.mat_budget_bytes > 0) {
    if (out.cost_params.mat_budget_bytes <= 0.0) {
      out.cost_params.mat_budget_bytes =
          static_cast<double>(options.mat_budget_bytes);
    }
    if (out.exec.mat_budget_bytes == 0) {
      out.exec.mat_budget_bytes = options.mat_budget_bytes;
    }
  }
  return out;
}

/// Parses every SQL string of the batch, failing on the first error.
Result<std::vector<LogicalExprPtr>> ParseBatch(
    const Catalog& catalog, const std::vector<std::string>& sql_batch) {
  std::vector<LogicalExprPtr> queries;
  for (const auto& sql : sql_batch) {
    MQO_ASSIGN_OR_RETURN(LogicalExprPtr tree, ParseQuery(sql, catalog));
    queries.push_back(std::move(tree));
  }
  return queries;
}

/// Statistics configuration for one optimization: the caller resolves where
/// collected stats come from (`registry` may be an external or call-local
/// one, or null, which degrades kCollected to kCatalogGuess).
StatsOptions StatsOptionsFor(const MqoOptions& options,
                             const TableStatsRegistry* registry) {
  StatsOptions stats;
  stats.mode = ResolveStatsMode(options.stats_mode);
  stats.table_stats = registry;
  stats.feedback = options.feedback;
  return stats;
}

/// Optimizer-side EXPLAIN snapshot: for every chosen class, the estimates the
/// decision was based on. The per-class predicted benefit is the marginal
/// bc(S \ {e}) − bc(S), computed incrementally off the committed set.
void CaptureClassEstimates(Memo* memo, BatchOptimizer* optimizer,
                           const std::set<EqId>& chosen,
                           const ConsolidatedPlan& plan, MqoOutcome* outcome) {
  if (chosen.empty()) return;
  const auto expected = ExpectedSegmentReads(*memo, plan);
  std::unordered_map<EqId, uint64_t> fps;
  optimizer->SetIncrementalBase(chosen);
  const double bc_full = optimizer->BestCost(chosen);
  for (EqId eq : chosen) {
    const EqId c = memo->Find(eq);
    MatClassEstimate est;
    est.eq = c;
    est.fingerprint = ClassFingerprint(*memo, c, &fps);
    std::vector<OpId> ops = memo->ClassOps(c);
    if (!ops.empty()) est.label = memo->op(ops.front()).ToString();
    est.est_rows = optimizer->stats()->ClassStats(c).rows;
    auto reads = expected.find(c);
    if (reads != expected.end()) est.expected_reads = reads->second;
    est.footprint_bytes = optimizer->MatFootprintBytes(c);
    std::set<EqId> without = chosen;
    without.erase(eq);
    est.predicted_benefit_ms = optimizer->BestCost(without) - bc_full;
    outcome->class_estimates.push_back(est);
  }
  std::sort(outcome->class_estimates.begin(), outcome->class_estimates.end(),
            [](const MatClassEstimate& a, const MatClassEstimate& b) {
              return a.eq < b.eq;
            });
}

/// Shared orchestration: inserts the batch into `memo`, expands, runs the
/// selected algorithm, and renders the chosen consolidated plan. The memo is
/// caller-owned so execution paths can keep it alive alongside the plan.
Result<ConsolidatedPlan> OptimizeIntoMemo(
    Memo* memo, const std::vector<LogicalExprPtr>& queries,
    const MqoOptions& options, const StatsOptions& stats, ObsContext* obs,
    MqoOutcome* outcome) {
  if (queries.empty()) {
    return Status::InvalidArgument("empty query batch");
  }
  memo->InsertBatch(queries);
  auto expanded = ExpandMemo(memo, options.expansion);
  MQO_RETURN_NOT_OK(expanded.status());

  BatchOptimizerOptions optimizer_options;
  optimizer_options.stats = stats;
  optimizer_options.obs = obs;
  // One knob governs executor and optimizer parallelism: an explicit
  // exec.num_threads > 1 fans greedy candidate evaluations across the same
  // worker pool; otherwise leave the 0 sentinel so MQO_OPT_THREADS (CI
  // ablation) can still opt the optimizer in.
  optimizer_options.num_threads =
      options.exec.num_threads > 1 ? options.exec.num_threads : 0;
  // A session's shared segment cache makes its resident classes zero-cost
  // materialization candidates: the snapshot is taken once here, so this
  // optimization prices a consistent view even while concurrent batches
  // insert and evict.
  if (options.exec.shared_cache != nullptr) {
    optimizer_options.cached_fingerprints =
        options.exec.shared_cache->FingerprintSnapshot();
  }
  BatchOptimizer optimizer(memo, CostModel(options.cost_params),
                           optimizer_options);
  outcome->stats_mode = optimizer.stats()->mode();
  MaterializationProblem problem(&optimizer);

  outcome->dag_classes = expanded.ValueOrDie().classes_after;
  outcome->dag_ops = expanded.ValueOrDie().ops_after;
  outcome->admission_refused =
      static_cast<int>(problem.admission_refused().size());
  // The DAG's shareable-node count, independent of the budget's admission
  // filter (the algorithms ran over the admitted subset).
  outcome->shareable_nodes =
      problem.universe_size() + outcome->admission_refused;
  switch (options.algorithm) {
    case MqoOptions::Algorithm::kMarginalGreedy:
      outcome->result = RunMarginalGreedy(&problem, options.marginal_options);
      break;
    case MqoOptions::Algorithm::kGreedy:
      outcome->result = RunGreedy(&problem);
      break;
    case MqoOptions::Algorithm::kVolcano:
      outcome->result = RunVolcano(&problem);
      break;
  }
  ConsolidatedPlan plan = optimizer.Plan(outcome->result.materialized);
  outcome->consolidated_plan = PlanToString(plan.root_plan);
  for (const auto& m : plan.materialized) {
    outcome->materialized_plans.push_back(PlanToString(m.compute_plan));
  }
  CaptureClassEstimates(memo, &optimizer, outcome->result.materialized, plan,
                        outcome);
  return plan;
}

/// Joins the optimizer's estimates with the executor's segment telemetry and
/// renders the EXPLAIN ANALYZE report; exports trace/metrics when enabled.
void AssembleRunReport(const ExecResult& executed, ObsContext* obs,
                       MqoExecutionOutcome* outcome) {
  outcome->store_stats = executed.store_stats;
  std::unordered_map<int, const SegmentRuntime*> by_eq;
  for (const auto& s : executed.segments) by_eq[s.eq] = &s;
  for (const auto& est : outcome->optimization.class_estimates) {
    ExplainEntry entry;
    entry.est = est;
    auto it = by_eq.find(est.eq);
    if (it != by_eq.end()) {
      entry.run = *it->second;
      entry.executed = true;
      entry.realized_saved_ms =
          entry.run.compute_ms *
          static_cast<double>(std::max<int64_t>(entry.run.reads - 1, 0));
    }
    outcome->explain.push_back(entry);
  }
  outcome->explain_analyze = RenderExplainAnalyze(outcome->explain);
  if (obs == nullptr) return;
  if (obs->options().metrics) {
    outcome->metrics_report = obs->metrics()->TextReport();
  }
  if (obs->options().trace) {
    outcome->trace_json = obs->tracer()->ToChromeJson();
    const std::string& path = obs->options().trace_path;
    if (!path.empty()) {
      std::ofstream out(path, std::ios::trunc);
      out << outcome->trace_json;
    }
  }
}

}  // namespace

Result<MqoOutcome> OptimizeBatch(const Catalog& catalog,
                                 const std::vector<LogicalExprPtr>& queries,
                                 const MqoOptions& options) {
  const MqoOptions effective = WithBudgetApplied(options);
  Memo memo(&catalog);
  MqoOutcome outcome;
  // No data in sight: collected statistics are only available through an
  // externally-supplied registry. Optimize-only runs have no outcome field
  // to surface traces through, so observability stays off here.
  MQO_ASSIGN_OR_RETURN(
      ConsolidatedPlan plan,
      OptimizeIntoMemo(&memo, queries, effective,
                       StatsOptionsFor(effective, effective.table_stats),
                       /*obs=*/nullptr, &outcome));
  (void)plan;
  return outcome;
}

Result<MqoExecutionOutcome> OptimizeAndExecuteBatch(
    const Catalog& catalog, const std::vector<LogicalExprPtr>& queries,
    const DataSet& data, const MqoOptions& options) {
  MqoOptions effective = WithBudgetApplied(options);
  Memo memo(&catalog);
  MqoExecutionOutcome outcome;
  outcome.backend = effective.backend;
  // One ObsContext spans the whole run — optimizer spans, executor spans and
  // store events land in a single trace/metrics scope.
  ObsContext obs_ctx(ResolveObsOptions(effective.obs));
  ObsContext* obs = obs_ctx.any_enabled() ? &obs_ctx : nullptr;
  effective.exec.obs = obs;
  StatsOptions stats = StatsOptionsFor(effective, effective.table_stats);
  // kCollected with no external registry: analyze the executed dataset into
  // a call-local one, lazily per table touched by the optimization.
  TableStatsRegistry local_registry;
  if (stats.mode == StatsMode::kCollected && stats.table_stats == nullptr) {
    AnalyzeOptions analyze;
    analyze.num_threads = effective.exec.num_threads;
    local_registry.Reset(&data, analyze);
    stats.table_stats = &local_registry;
  }
  MQO_ASSIGN_OR_RETURN(
      ConsolidatedPlan plan,
      OptimizeIntoMemo(&memo, queries, effective, stats, obs,
                       &outcome.optimization));
  MQO_ASSIGN_OR_RETURN(
      ExecResult executed,
      ExecuteConsolidatedResult(effective.backend, &memo, &data, plan,
                                effective.exec));
  outcome.results = std::move(executed.results);
  outcome.feedback = std::move(executed.feedback);
  outcome.cross_batch_hits = executed.cross_batch_hits;
  AssembleRunReport(executed, obs, &outcome);
  return outcome;
}

MqoSession::MqoSession(const Catalog* catalog, const DataSet* data,
                       MqoOptions options)
    : catalog_(catalog),
      data_(data),
      options_(WithBudgetApplied(options)),
      session_obs_(ResolveObsOptions(options_.obs)) {
  AnalyzeOptions analyze;
  analyze.num_threads = options_.exec.num_threads;
  registry_.Reset(data_, analyze);
  if (options_.shared_segment_cache) {
    // The cache rides the executors' store machinery (budget, eviction,
    // spill) with its own budget knob; its counters and store events report
    // into the session-lifetime obs scope, not any single run's.
    MatStoreOptions cache_options = options_.exec.mat_store();
    if (options_.shared_cache_budget_bytes > 0) {
      cache_options.budget_bytes = options_.shared_cache_budget_bytes;
    }
    cache_options.obs = session_obs();
    cache_ = std::make_unique<SharedSegmentCache>(cache_options);
  }
}

Result<MqoExecutionOutcome> MqoSession::Run(
    const std::vector<std::string>& sql_batch) {
  MQO_ASSIGN_OR_RETURN(std::vector<LogicalExprPtr> queries,
                       ParseBatch(*catalog_, sql_batch));
  return Run(queries);
}

Result<MqoExecutionOutcome> MqoSession::Run(
    const std::vector<LogicalExprPtr>& queries) {
  const uint64_t batch_id = next_batch_id_.fetch_add(1);
  const int64_t run_start_ns = MonotonicNanos();
  MqoOptions effective = options_;
  effective.table_stats = &registry_;
  effective.exec.shared_cache = cache_.get();
  // The run optimizes against a point-in-time copy of the feedback map:
  // concurrent runs merging their observations back cannot race with this
  // run's estimator reads.
  CardinalityFeedback feedback_snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    feedback_snapshot = feedback_;
  }
  effective.feedback = &feedback_snapshot;
  // Scope the run's trace by its batch id: events export under pid=batch_id,
  // and concurrent runs sharing one configured trace file fan out into
  // per-batch files instead of clobbering each other.
  effective.obs = ResolveObsOptions(effective.obs);
  effective.obs.scope_id = batch_id;
  if (effective.obs.trace && !effective.obs.trace_path.empty()) {
    effective.obs.trace_path += ".batch" + std::to_string(batch_id);
  }
  MQO_ASSIGN_OR_RETURN(
      MqoExecutionOutcome outcome,
      OptimizeAndExecuteBatch(*catalog_, queries, *data_, effective));
  outcome.batch_id = batch_id;
  // Fold this run's observations into the session: the next batch's
  // estimates — and the footprints/eviction weights derived from them —
  // re-seed from what actually happened.
  {
    std::lock_guard<std::mutex> lock(mu_);
    feedback_.MergeFrom(outcome.feedback);
  }
  if (MetricsRegistry* m = MetricsOf(session_obs())) {
    m->ObserveMs("session.run_ms",
                 NanosToMillis(MonotonicNanos() - run_start_ns));
  }
  return outcome;
}

void MqoSession::InvalidateTable(const std::string& table) {
  registry_.Invalidate(table);
  if (cache_) cache_->InvalidateTable(table);
}

void MqoSession::InvalidateStats() {
  registry_.BindData(data_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    feedback_.clear();
  }
  if (cache_) cache_->Clear();
}

Result<MqoExecutionOutcome> OptimizeAndExecuteSqlBatch(
    const Catalog& catalog, const std::vector<std::string>& sql_batch,
    const DataSet& data, const MqoOptions& options) {
  MQO_ASSIGN_OR_RETURN(std::vector<LogicalExprPtr> queries,
                       ParseBatch(catalog, sql_batch));
  return OptimizeAndExecuteBatch(catalog, queries, data, options);
}

Result<MqoOutcome> OptimizeSqlBatch(const Catalog& catalog,
                                    const std::vector<std::string>& sql_batch,
                                    const MqoOptions& options) {
  MQO_ASSIGN_OR_RETURN(std::vector<LogicalExprPtr> queries,
                       ParseBatch(catalog, sql_batch));
  return OptimizeBatch(catalog, queries, options);
}

}  // namespace mqo
