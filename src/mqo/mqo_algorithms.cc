#include "mqo/mqo_algorithms.h"

#include "common/timer.h"
#include "obs/obs.h"

namespace mqo {

namespace {

MqoResult Finalize(MaterializationProblem* problem, std::string name,
                   const ElementSet& selected, double elapsed_ms,
                   int64_t optimizations_before, int64_t evals) {
  MqoResult r;
  r.algorithm = std::move(name);
  r.materialized = problem->ToEqIds(selected);
  r.total_cost = problem->optimizer()->BestCost(r.materialized);
  r.volcano_cost = problem->VolcanoCost();
  r.benefit = r.volcano_cost - r.total_cost;
  r.num_materialized = static_cast<int>(r.materialized.size());
  r.optimization_time_ms = elapsed_ms;
  r.optimizations =
      problem->optimizer()->num_optimizations() - optimizations_before;
  r.function_evals = evals;
  if (MetricsRegistry* m = MetricsOf(problem->optimizer()->obs())) {
    m->ObserveMs("mqo.optimize_ms", elapsed_ms);
    m->SetGauge("mqo.num_materialized", r.num_materialized);
    m->SetGauge("mqo.benefit", r.benefit);
  }
  return r;
}

/// "mqo.<algorithm>" span wrapping one driver run, closed by Finalize's
/// caller going out of scope.
TraceSpan AlgoSpan(MaterializationProblem* problem, const char* name) {
  return TraceSpan(TracerOf(problem->optimizer()->obs()), name, "mqo");
}

}  // namespace

MqoResult RunVolcano(MaterializationProblem* problem) {
  TraceSpan span = AlgoSpan(problem, "mqo.volcano");
  WallTimer timer;
  const int64_t before = problem->optimizer()->num_optimizations();
  ElementSet empty(problem->universe_size());
  return Finalize(problem, "Volcano", empty, timer.ElapsedMillis(), before, 0);
}

MqoResult RunGreedy(MaterializationProblem* problem, bool lazy) {
  TraceSpan span = AlgoSpan(problem, "mqo.greedy");
  WallTimer timer;
  const int64_t before = problem->optimizer()->num_optimizations();
  std::vector<int> candidates(problem->universe_size());
  for (int i = 0; i < problem->universe_size(); ++i) candidates[i] = i;
  // Pin the incremental re-optimization base to the committed set X, so each
  // trial bc(X ∪ {x}) re-plans only the ancestors of x.
  problem->optimizer()->SetIncrementalBase({});
  auto on_pick = [problem](const ElementSet& x) {
    problem->optimizer()->SetIncrementalBase(problem->ToEqIds(x));
  };
  CostGreedyResult greedy =
      CostGreedyMin(problem->best_cost(), candidates, lazy, on_pick,
                    TracerOf(problem->optimizer()->obs()),
                    problem->optimizer()->options().num_threads);
  return Finalize(problem, "Greedy", greedy.selected, timer.ElapsedMillis(),
                  before, greedy.function_evals);
}

MqoResult RunMarginalGreedy(MaterializationProblem* problem,
                            const MarginalGreedyMqoOptions& options) {
  TraceSpan span = AlgoSpan(problem, "mqo.marginal_greedy");
  WallTimer timer;
  const int64_t before = problem->optimizer()->num_optimizations();
  Decomposition d = options.decomposition == DecompositionKind::kCanonical
                        ? problem->CanonicalDecomposition()
                        : problem->UseBenefitDecomposition();
  MarginalGreedyOptions greedy_options;
  greedy_options.lazy = options.lazy;
  greedy_options.cardinality_limit = options.cardinality_limit;
  greedy_options.universe_reduction = options.universe_reduction;
  greedy_options.tracer = TracerOf(problem->optimizer()->obs());
  greedy_options.num_threads = problem->optimizer()->options().num_threads;
  problem->optimizer()->SetIncrementalBase({});
  greedy_options.on_pick = [problem](const ElementSet& x) {
    problem->optimizer()->SetIncrementalBase(problem->ToEqIds(x));
  };
  GreedyResult greedy = MarginalGreedy(problem->benefit(), d, greedy_options);
  return Finalize(problem, "MarginalGreedy", greedy.selected,
                  timer.ElapsedMillis(), before, greedy.function_evals);
}

MqoResult RunMaterializeAll(MaterializationProblem* problem) {
  TraceSpan span = AlgoSpan(problem, "mqo.materialize_all");
  WallTimer timer;
  const int64_t before = problem->optimizer()->num_optimizations();
  ElementSet all = ElementSet::Full(problem->universe_size());
  return Finalize(problem, "MaterializeAll", all, timer.ElapsedMillis(), before,
                  0);
}

MqoResult RunExhaustive(MaterializationProblem* problem) {
  TraceSpan span = AlgoSpan(problem, "mqo.exhaustive");
  WallTimer timer;
  const int64_t before = problem->optimizer()->num_optimizations();
  GreedyResult best = ExhaustiveMax(problem->benefit());
  return Finalize(problem, "Exhaustive", best.selected, timer.ElapsedMillis(),
                  before, best.function_evals);
}

}  // namespace mqo
