#include "mqo/service.h"

#include <algorithm>
#include <thread>

#include "common/timer.h"

namespace mqo {

ServiceReport RunServiceTraffic(MqoSession* session,
                                const ServiceBatchGenerator& generate,
                                const ServiceTrafficOptions& options) {
  ServiceReport report;
  const int clients = std::max(1, options.num_clients);
  const int per_client = std::max(0, options.batches_per_client);
  // Pre-sized so each client writes only its own slots — no result-side
  // synchronization, and the report order is independent of interleaving.
  report.batches.resize(static_cast<size_t>(clients) *
                        static_cast<size_t>(per_client));
  WallTimer timer;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (int b = 0; b < per_client; ++b) {
        ServiceBatchResult& slot =
            report.batches[static_cast<size_t>(c) * per_client + b];
        slot.client = c;
        slot.batch_index = b;
        WallTimer batch_timer;
        Result<MqoExecutionOutcome> run = session->Run(generate(c, b));
        slot.wall_ms = batch_timer.ElapsedMillis();
        if (!run.ok()) {
          slot.error = run.status().ToString();
          continue;
        }
        MqoExecutionOutcome outcome = std::move(run).ValueOrDie();
        slot.ok = true;
        slot.batch_id = outcome.batch_id;
        slot.cross_batch_hits = outcome.cross_batch_hits;
        slot.num_materialized = outcome.optimization.result.num_materialized;
        if (options.keep_results) slot.results = std::move(outcome.results);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  report.wall_ms = timer.ElapsedMillis();
  for (const ServiceBatchResult& b : report.batches) {
    if (!b.ok) ++report.failed;
    report.cross_batch_hits += b.cross_batch_hits;
  }
  report.batches_per_second =
      report.wall_ms > 0.0
          ? 1000.0 * static_cast<double>(report.batches.size()) /
                report.wall_ms
          : 0.0;
  return report;
}

}  // namespace mqo
