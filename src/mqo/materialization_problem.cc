#include "mqo/materialization_problem.h"

namespace mqo {

MaterializationProblem::MaterializationProblem(BatchOptimizer* optimizer)
    : optimizer_(optimizer), universe_(ShareableNodes(*optimizer->memo())) {
  const int n = static_cast<int>(universe_.size());
  benefit_ = std::make_unique<LambdaSetFunction>(
      n, [this](const ElementSet& s) {
        return optimizer_->BestCost({}) - optimizer_->BestCost(ToEqIds(s));
      });
  best_cost_ = std::make_unique<LambdaSetFunction>(
      n, [this](const ElementSet& s) {
        return optimizer_->BestCost(ToEqIds(s));
      });
}

std::set<EqId> MaterializationProblem::ToEqIds(const ElementSet& s) const {
  std::set<EqId> out;
  for (int i : s.ToVector()) out.insert(universe_[i]);
  return out;
}

Decomposition MaterializationProblem::CanonicalDecomposition() {
  // c*(e) needs bc(U) and bc(U \ {e}) for every e: pin the full universe as
  // the incremental base so each bc(U \ {e}) re-plans only e's ancestors.
  std::set<EqId> full(universe_.begin(), universe_.end());
  optimizer_->SetIncrementalBase(full);
  Decomposition d = ::mqo::CanonicalDecomposition(*benefit_);
  optimizer_->SetIncrementalBase({});
  return d;
}

Decomposition MaterializationProblem::UseBenefitDecomposition() {
  Decomposition d;
  d.costs.resize(universe_.size());
  for (size_t i = 0; i < universe_.size(); ++i) {
    d.costs[i] = optimizer_->StandaloneMatCost(universe_[i]);
  }
  return d;
}

}  // namespace mqo
