#include "mqo/materialization_problem.h"

#include "obs/obs.h"
#include "storage/morsel.h"

namespace mqo {

namespace {

/// Evaluates `fn(i)` for every i in [0, n) — across the worker pool when the
/// optimizer is configured for it, serially otherwise. `fn` writes only its
/// own index's slot, so downstream index-order consumption is deterministic.
void ForEachIndex(size_t n, int num_threads,
                  const std::function<void(size_t)>& fn) {
  if (num_threads > 1 && n > 1) {
    ParallelFor(n, num_threads, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

MaterializationProblem::MaterializationProblem(BatchOptimizer* optimizer)
    : optimizer_(optimizer), universe_(ShareableNodes(*optimizer->memo())) {
  const CostModel& cm = optimizer_->cost_model();
  const int num_threads = optimizer_->options().num_threads;
  if (cm.params().mat_budget_bytes > 0.0) {
    // Admission control: refuse nodes whose standalone recomputation is
    // cheaper than the spill round trip of their footprint. With
    // StandaloneMatCost = compute + write and the round trip = write + read
    // of the same footprint, this refuses exactly the nodes whose compute
    // cost undercuts one sequential read of their own result — segments
    // that can never repay the budget pressure of holding them.
    // The per-node footprint/standalone-cost evaluations are independent, so
    // they fan across the worker pool; the refusal filter below runs
    // serially in universe order, keeping refusal order and tracing
    // identical to the serial run.
    Tracer* tracer = TracerOf(optimizer_->obs());
    std::vector<double> footprints(universe_.size());
    std::vector<double> standalones(universe_.size());
    ForEachIndex(universe_.size(), num_threads, [&](size_t i) {
      footprints[i] = optimizer_->MatFootprintBytes(universe_[i]);
      standalones[i] = optimizer_->StandaloneMatCost(universe_[i]);
    });
    std::vector<EqId> admitted;
    for (size_t i = 0; i < universe_.size(); ++i) {
      const EqId e = universe_[i];
      const double footprint = footprints[i];
      const double blocks = cm.Blocks(footprint);
      const double spill_round_trip =
          cm.SeqWriteCost(blocks) + cm.SeqReadCost(blocks);
      const double standalone = standalones[i];
      // Classes already resident in the cross-batch cache are never refused:
      // their segment is paid for, so "recompute is cheaper than the spill
      // round trip" does not apply — reading the cache costs no compute.
      if (standalone <= spill_round_trip && !optimizer_->IsCachedClass(e)) {
        refused_.push_back(e);
        if (tracer) {
          tracer->Instant("admission_refused", "mqo",
                          {TNum("eq", e), TNum("footprint_bytes", footprint),
                           TNum("standalone_cost_ms", standalone),
                           TNum("spill_round_trip_ms", spill_round_trip)});
        }
        if (MetricsRegistry* m = MetricsOf(optimizer_->obs())) {
          m->AddCounter("mqo.admission_refused");
        }
      } else {
        admitted.push_back(e);
      }
    }
    universe_ = std::move(admitted);
  }
  const int n = static_cast<int>(universe_.size());
  benefit_ = std::make_unique<LambdaSetFunction>(
      n, [this](const ElementSet& s) {
        const std::set<EqId> eqs = ToEqIds(s);
        return optimizer_->BestCost({}) -
               (optimizer_->BestCost(eqs) + SpillPenalty(eqs));
      });
  best_cost_ = std::make_unique<LambdaSetFunction>(
      n, [this](const ElementSet& s) {
        const std::set<EqId> eqs = ToEqIds(s);
        return optimizer_->BestCost(eqs) + SpillPenalty(eqs);
      });
}

double MaterializationProblem::FootprintBytes(const std::set<EqId>& eqs) const {
  double bytes = 0.0;
  for (EqId e : eqs) bytes += optimizer_->MatFootprintBytes(e);
  return bytes;
}

double MaterializationProblem::SpillPenalty(const std::set<EqId>& eqs) const {
  return optimizer_->cost_model().SpillPenalty(FootprintBytes(eqs));
}

std::set<EqId> MaterializationProblem::ToEqIds(const ElementSet& s) const {
  std::set<EqId> out;
  for (int i : s.ToVector()) out.insert(universe_[i]);
  return out;
}

Decomposition MaterializationProblem::CanonicalDecomposition() {
  // c*(e) needs bc(U) and bc(U \ {e}) for every e: pin the full universe as
  // the incremental base so each bc(U \ {e}) re-plans only e's ancestor
  // cone, and fan the n independent evaluations across the worker pool.
  std::set<EqId> full(universe_.begin(), universe_.end());
  optimizer_->SetIncrementalBase(full);
  Decomposition d = ::mqo::CanonicalDecomposition(
      *benefit_, optimizer_->options().num_threads);
  optimizer_->SetIncrementalBase({});
  return d;
}

Decomposition MaterializationProblem::UseBenefitDecomposition() {
  Decomposition d;
  d.costs.resize(universe_.size());
  ForEachIndex(universe_.size(), optimizer_->options().num_threads,
               [&](size_t i) {
                 d.costs[i] = optimizer_->StandaloneMatCost(universe_[i]);
               });
  return d;
}

}  // namespace mqo
