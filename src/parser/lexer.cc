#include "parser/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace mqo {

const char* TokenKindToString(TokenKind k) {
  switch (k) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  auto push = [&](TokenKind kind, std::string text, int pos) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.position = pos;
    tokens.push_back(std::move(t));
  };
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const int pos = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      push(TokenKind::kIdentifier, ToLower(sql.substr(i, j - i)), pos);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      bool seen_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       (sql[j] == '.' && !seen_dot))) {
        if (sql[j] == '.') seen_dot = true;
        ++j;
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = sql.substr(i, j - i);
      t.number = std::stod(t.text);
      t.position = pos;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < n && sql[j] != '\'') ++j;
      if (j >= n) {
        return Status::ParseError("unterminated string literal at position " +
                                  std::to_string(pos));
      }
      push(TokenKind::kString, sql.substr(i + 1, j - i - 1), pos);
      i = j + 1;
      continue;
    }
    switch (c) {
      case ',':
        push(TokenKind::kComma, ",", pos);
        ++i;
        continue;
      case '.':
        push(TokenKind::kDot, ".", pos);
        ++i;
        continue;
      case '(':
        push(TokenKind::kLParen, "(", pos);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, ")", pos);
        ++i;
        continue;
      case '*':
        push(TokenKind::kStar, "*", pos);
        ++i;
        continue;
      case '=':
        push(TokenKind::kEq, "=", pos);
        ++i;
        continue;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenKind::kLe, "<=", pos);
          i += 2;
        } else {
          push(TokenKind::kLt, "<", pos);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenKind::kGe, ">=", pos);
          i += 2;
        } else {
          push(TokenKind::kGt, ">", pos);
          ++i;
        }
        continue;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at position " + std::to_string(pos));
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = static_cast<int>(n);
  tokens.push_back(end);
  return tokens;
}

}  // namespace mqo
