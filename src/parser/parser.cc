#include "parser/parser.h"

#include <algorithm>
#include <map>
#include <set>

#include "parser/lexer.h"

namespace mqo {

namespace {

/// Raw (unbound) column reference as written: optional qualifier + name.
struct RawColumn {
  std::string qualifier;
  std::string name;
  int position = 0;
};

/// One item in the SELECT list.
struct SelectItem {
  bool is_aggregate = false;
  AggFunc func = AggFunc::kSum;
  bool star_argument = false;  // COUNT(*)
  RawColumn column;            // plain column, or the aggregate argument
};

/// One WHERE conjunct before binding.
struct RawCondition {
  RawColumn left;
  CompareOp op = CompareOp::kEq;
  bool right_is_column = false;
  RawColumn right_column;
  Literal literal;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Catalog* catalog)
      : tokens_(std::move(tokens)), catalog_(catalog) {}

  Result<LogicalExprPtr> Parse();

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool IsKeyword(const Token& t, const char* kw) const {
    return t.kind == TokenKind::kIdentifier && t.text == kw;
  }
  bool ConsumeKeyword(const char* kw) {
    if (IsKeyword(Peek(), kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Status::ParseError(std::string("expected ") + TokenKindToString(kind) +
                                " but found " + TokenKindToString(Peek().kind) +
                                " at position " + std::to_string(Peek().position));
    }
    Advance();
    return Status::OK();
  }

  Result<RawColumn> ParseColumn();
  Result<SelectItem> ParseSelectItem();
  Result<RawCondition> ParseCondition();
  Status ParseFromList();
  Result<ColumnRef> Bind(const RawColumn& raw) const;
  Result<LogicalExprPtr> Build();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const Catalog* catalog_;

  bool select_star_ = false;
  std::vector<SelectItem> select_items_;
  std::vector<std::pair<std::string, std::string>> from_;  // (table, alias)
  std::vector<RawCondition> conditions_;
  std::vector<RawColumn> group_by_;
};

const std::set<std::string> kAggNames = {"sum", "count", "min", "max", "avg"};

AggFunc AggFromName(const std::string& name) {
  if (name == "sum") return AggFunc::kSum;
  if (name == "count") return AggFunc::kCount;
  if (name == "min") return AggFunc::kMin;
  if (name == "max") return AggFunc::kMax;
  return AggFunc::kAvg;
}

Result<RawColumn> Parser::ParseColumn() {
  if (Peek().kind != TokenKind::kIdentifier) {
    return Status::ParseError("expected column name at position " +
                              std::to_string(Peek().position));
  }
  RawColumn col;
  col.position = Peek().position;
  col.name = Advance().text;
  if (Peek().kind == TokenKind::kDot) {
    Advance();
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::ParseError("expected column name after '.' at position " +
                                std::to_string(Peek().position));
    }
    col.qualifier = col.name;
    col.name = Advance().text;
  }
  return col;
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  if (Peek().kind == TokenKind::kIdentifier && kAggNames.count(Peek().text) > 0 &&
      Peek(1).kind == TokenKind::kLParen) {
    item.is_aggregate = true;
    item.func = AggFromName(Advance().text);
    MQO_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    if (Peek().kind == TokenKind::kStar) {
      Advance();
      item.star_argument = true;
    } else {
      MQO_ASSIGN_OR_RETURN(item.column, ParseColumn());
    }
    MQO_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    return item;
  }
  MQO_ASSIGN_OR_RETURN(item.column, ParseColumn());
  return item;
}

Result<RawCondition> Parser::ParseCondition() {
  RawCondition cond;
  MQO_ASSIGN_OR_RETURN(cond.left, ParseColumn());
  switch (Peek().kind) {
    case TokenKind::kEq:
      cond.op = CompareOp::kEq;
      break;
    case TokenKind::kLt:
      cond.op = CompareOp::kLt;
      break;
    case TokenKind::kLe:
      cond.op = CompareOp::kLe;
      break;
    case TokenKind::kGt:
      cond.op = CompareOp::kGt;
      break;
    case TokenKind::kGe:
      cond.op = CompareOp::kGe;
      break;
    default:
      return Status::ParseError("expected comparison operator at position " +
                                std::to_string(Peek().position));
  }
  Advance();
  const Token& rhs = Peek();
  if (rhs.kind == TokenKind::kNumber) {
    cond.literal = Literal(Advance().number);
  } else if (rhs.kind == TokenKind::kString) {
    cond.literal = Literal(Advance().text);
  } else if (IsKeyword(rhs, "date") && Peek(1).kind == TokenKind::kString) {
    Advance();
    cond.literal = Literal(static_cast<double>(DateToDays(Advance().text)));
  } else if (rhs.kind == TokenKind::kIdentifier) {
    cond.right_is_column = true;
    MQO_ASSIGN_OR_RETURN(cond.right_column, ParseColumn());
  } else {
    return Status::ParseError("expected literal or column at position " +
                              std::to_string(rhs.position));
  }
  return cond;
}

Status Parser::ParseFromList() {
  while (true) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::ParseError("expected table name at position " +
                                std::to_string(Peek().position));
    }
    std::string table = Advance().text;
    std::string alias = table;
    ConsumeKeyword("as");
    // A bare identifier that is not a clause keyword is an alias.
    if (Peek().kind == TokenKind::kIdentifier && !IsKeyword(Peek(), "where") &&
        !IsKeyword(Peek(), "group")) {
      alias = Advance().text;
    }
    from_.emplace_back(std::move(table), std::move(alias));
    if (Peek().kind == TokenKind::kComma) {
      Advance();
      continue;
    }
    break;
  }
  return Status::OK();
}

Result<ColumnRef> Parser::Bind(const RawColumn& raw) const {
  if (!raw.qualifier.empty()) {
    for (const auto& [table, alias] : from_) {
      if (alias != raw.qualifier) continue;
      MQO_ASSIGN_OR_RETURN(const Table* t, catalog_->GetTable(table));
      if (!t->HasColumn(raw.name)) {
        return Status::InvalidArgument("column '" + raw.name +
                                       "' not in table '" + table + "'");
      }
      return ColumnRef(raw.qualifier, raw.name);
    }
    return Status::InvalidArgument("unknown alias '" + raw.qualifier + "'");
  }
  // Unqualified: search all FROM tables; must be unambiguous.
  ColumnRef found;
  int matches = 0;
  for (const auto& [table, alias] : from_) {
    auto t = catalog_->GetTable(table);
    if (!t.ok()) return t.status();
    if (t.ValueOrDie()->HasColumn(raw.name)) {
      found = ColumnRef(alias, raw.name);
      ++matches;
    }
  }
  if (matches == 0) {
    return Status::InvalidArgument("unknown column '" + raw.name + "'");
  }
  if (matches > 1) {
    return Status::InvalidArgument("ambiguous column '" + raw.name + "'");
  }
  return found;
}

Result<LogicalExprPtr> Parser::Build() {
  // Validate tables and aliases.
  std::set<std::string> aliases;
  for (const auto& [table, alias] : from_) {
    MQO_RETURN_NOT_OK(catalog_->GetTable(table).status());
    if (!aliases.insert(alias).second) {
      return Status::InvalidArgument("duplicate alias '" + alias + "'");
    }
  }

  // Split conditions into join conditions and selections, binding columns.
  struct BoundJoin {
    ColumnRef left;
    ColumnRef right;
  };
  std::vector<BoundJoin> joins;
  std::vector<Comparison> selections;
  for (const auto& cond : conditions_) {
    MQO_ASSIGN_OR_RETURN(ColumnRef left, Bind(cond.left));
    if (cond.right_is_column) {
      if (cond.op != CompareOp::kEq) {
        return Status::InvalidArgument(
            "only equality joins are supported between columns");
      }
      MQO_ASSIGN_OR_RETURN(ColumnRef right, Bind(cond.right_column));
      joins.push_back({left, right});
    } else {
      Comparison cmp;
      cmp.column = left;
      cmp.op = cond.op;
      cmp.literal = cond.literal;
      selections.push_back(std::move(cmp));
    }
  }

  // Left-deep join tree in FROM order; each join condition attaches at the
  // first join where both of its sides are available.
  auto alias_index = [&](const std::string& alias) {
    for (size_t i = 0; i < from_.size(); ++i) {
      if (from_[i].second == alias) return static_cast<int>(i);
    }
    return -1;
  };
  std::vector<std::vector<JoinCondition>> attach(from_.size());
  for (const auto& j : joins) {
    const int li = alias_index(j.left.qualifier);
    const int ri = alias_index(j.right.qualifier);
    if (li < 0 || ri < 0) {
      return Status::InvalidArgument("join condition references unknown alias");
    }
    if (li == ri) {
      return Status::InvalidArgument("join condition within a single table: " +
                                     j.left.ToString() + " = " + j.right.ToString());
    }
    JoinCondition jc;
    jc.left = j.left;
    jc.right = j.right;
    attach[static_cast<size_t>(std::max(li, ri))].push_back(std::move(jc));
  }

  LogicalExprPtr tree = LogicalExpr::Scan(from_[0].first, from_[0].second);
  for (size_t i = 1; i < from_.size(); ++i) {
    tree = LogicalExpr::Join(tree, LogicalExpr::Scan(from_[i].first, from_[i].second),
                             JoinPredicate(std::move(attach[i])));
  }
  if (!selections.empty()) {
    tree = LogicalExpr::Select(tree, Predicate(std::move(selections)));
  }

  // SELECT list: aggregates (with GROUP BY) or plain projection.
  std::vector<ColumnRef> groups;
  for (const auto& g : group_by_) {
    MQO_ASSIGN_OR_RETURN(ColumnRef col, Bind(g));
    groups.push_back(col);
  }
  const bool has_aggregate =
      std::any_of(select_items_.begin(), select_items_.end(),
                  [](const SelectItem& s) { return s.is_aggregate; });
  if (!has_aggregate && !group_by_.empty()) {
    return Status::InvalidArgument("GROUP BY requires an aggregate SELECT list");
  }
  if (has_aggregate) {
    std::vector<AggExpr> aggs;
    for (const auto& item : select_items_) {
      if (item.is_aggregate) {
        AggExpr a;
        a.func = item.func;
        if (!item.star_argument) {
          MQO_ASSIGN_OR_RETURN(a.arg, Bind(item.column));
        }
        aggs.push_back(std::move(a));
      } else {
        MQO_ASSIGN_OR_RETURN(ColumnRef col, Bind(item.column));
        if (std::find(groups.begin(), groups.end(), col) == groups.end()) {
          return Status::InvalidArgument("column '" + col.ToString() +
                                         "' must appear in GROUP BY");
        }
      }
    }
    return LogicalExpr::Aggregate(tree, std::move(groups), std::move(aggs));
  }
  if (select_star_) return tree;
  std::vector<ColumnRef> cols;
  for (const auto& item : select_items_) {
    MQO_ASSIGN_OR_RETURN(ColumnRef col, Bind(item.column));
    cols.push_back(col);
  }
  return LogicalExpr::Project(tree, std::move(cols));
}

Result<LogicalExprPtr> Parser::Parse() {
  if (!ConsumeKeyword("select")) {
    return Status::ParseError("query must start with SELECT");
  }
  if (Peek().kind == TokenKind::kStar) {
    Advance();
    select_star_ = true;
  } else {
    while (true) {
      MQO_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      select_items_.push_back(std::move(item));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
  }
  if (!ConsumeKeyword("from")) {
    return Status::ParseError("expected FROM at position " +
                              std::to_string(Peek().position));
  }
  MQO_RETURN_NOT_OK(ParseFromList());
  if (ConsumeKeyword("where")) {
    while (true) {
      MQO_ASSIGN_OR_RETURN(RawCondition cond, ParseCondition());
      conditions_.push_back(std::move(cond));
      if (ConsumeKeyword("and")) continue;
      break;
    }
  }
  if (ConsumeKeyword("group")) {
    if (!ConsumeKeyword("by")) {
      return Status::ParseError("expected BY after GROUP");
    }
    while (true) {
      MQO_ASSIGN_OR_RETURN(RawColumn col, ParseColumn());
      group_by_.push_back(std::move(col));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
  }
  if (Peek().kind != TokenKind::kEnd) {
    return Status::ParseError("unexpected trailing input at position " +
                              std::to_string(Peek().position));
  }
  return Build();
}

}  // namespace

Result<LogicalExprPtr> ParseQuery(const std::string& sql, const Catalog& catalog) {
  MQO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens), &catalog);
  return parser.Parse();
}

}  // namespace mqo
