// Lexer for the mini-SQL frontend.
//
// Token set covers the subset of SQL the workload needs: SELECT lists with
// aggregates, FROM lists with aliases, WHERE conjunctions of comparisons
// (including equijoin conditions), GROUP BY, and DATE 'YYYY-MM-DD' literals.

#ifndef MQO_PARSER_LEXER_H_
#define MQO_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace mqo {

/// Kind of a lexed token.
enum class TokenKind {
  kIdentifier,  ///< bare word: table / column / alias (keywords resolved later)
  kNumber,      ///< numeric literal
  kString,      ///< 'single-quoted' string literal
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kEq,
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

const char* TokenKindToString(TokenKind k);

/// One token with its source text (identifiers are lower-cased; string
/// literal text excludes the quotes).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
  int position = 0;  ///< Byte offset in the input, for error messages.
};

/// Tokenizes `sql`. Returns ParseError with position info on bad input.
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace mqo

#endif  // MQO_PARSER_LEXER_H_
