// Mini-SQL parser + binder producing logical algebra trees.
//
// Supported grammar (case-insensitive keywords):
//
//   query      := SELECT select_list FROM table_list
//                 [WHERE condition (AND condition)*]
//                 [GROUP BY column (',' column)*]
//   select_list:= '*' | item (',' item)*
//   item       := column | agg '(' (column | '*') ')'
//   agg        := SUM | COUNT | MIN | MAX | AVG
//   table_list := table [AS? alias] (',' table [AS? alias])*
//   condition  := column op (column | literal)
//   op         := '=' | '<' | '<=' | '>' | '>='
//   column     := [alias '.'] name
//   literal    := number | 'string' | DATE 'YYYY-MM-DD'
//
// Joins are expressed as column = column conditions in WHERE (the classic
// conjunctive form); the binder builds a left-deep join tree in FROM order,
// attaching each join condition at the first join where both sides are
// available, and turning column-vs-literal conditions into selections (which
// NormalizeTree later pushes down). Unqualified column names are resolved
// against the FROM tables and must be unambiguous.

#ifndef MQO_PARSER_PARSER_H_
#define MQO_PARSER_PARSER_H_

#include <string>

#include "algebra/logical_expr.h"
#include "catalog/catalog.h"
#include "common/status.h"

namespace mqo {

/// Parses one SELECT statement against `catalog` into a logical tree
/// (Project or Aggregate over selections and joins). Returns ParseError on
/// syntax errors and InvalidArgument on binding errors (unknown table or
/// column, ambiguous unqualified name, aggregate misuse).
Result<LogicalExprPtr> ParseQuery(const std::string& sql, const Catalog& catalog);

}  // namespace mqo

#endif  // MQO_PARSER_PARSER_H_
