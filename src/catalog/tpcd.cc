#include "catalog/tpcd.h"

#include <algorithm>

namespace mqo {

namespace {

constexpr double kDateMin = 0.0;      // 1992-01-01
constexpr double kDateMax = 2556.0;   // 1998-12-31

ColumnDef Key(const std::string& name, double rows) {
  return ColumnDef{name, ColumnType::kInt, 4, rows, 0.0, rows};
}

ColumnDef Fk(const std::string& name, double ref_rows) {
  return ColumnDef{name, ColumnType::kInt, 4, ref_rows, 0.0, ref_rows};
}

ColumnDef Str(const std::string& name, int width, double distinct) {
  return ColumnDef{name, ColumnType::kString, width, distinct, 0.0, distinct};
}

ColumnDef Num(const std::string& name, double distinct, double lo, double hi) {
  return ColumnDef{name, ColumnType::kDouble, 8, distinct, lo, hi};
}

ColumnDef Date(const std::string& name) {
  return ColumnDef{name, ColumnType::kDate, 4, kDateMax - kDateMin + 1, kDateMin,
                   kDateMax};
}

ColumnDef IntCol(const std::string& name, double distinct, double lo, double hi) {
  return ColumnDef{name, ColumnType::kInt, 4, distinct, lo, hi};
}

}  // namespace

Catalog MakeTpcdCatalog(double scale_factor) {
  const double sf = scale_factor;
  Catalog cat;

  const double n_region = 5;
  const double n_nation = 25;
  const double n_supplier = 10000 * sf;
  const double n_part = 200000 * sf;
  const double n_partsupp = 800000 * sf;
  const double n_customer = 150000 * sf;
  const double n_orders = 1500000 * sf;
  const double n_lineitem = 6000000 * sf;

  {
    Table t("region", n_region);
    t.AddColumn(Key("r_regionkey", n_region));
    t.AddColumn(Str("r_name", 25, n_region));
    t.AddColumn(Str("r_comment", 100, n_region));
    t.AddIndex(IndexDef{{"r_regionkey"}, /*clustered=*/true});
    (void)cat.AddTable(std::move(t));
  }
  {
    Table t("nation", n_nation);
    t.AddColumn(Key("n_nationkey", n_nation));
    t.AddColumn(Str("n_name", 25, n_nation));
    t.AddColumn(Fk("n_regionkey", n_region));
    t.AddColumn(Str("n_comment", 100, n_nation));
    t.AddIndex(IndexDef{{"n_nationkey"}, /*clustered=*/true});
    (void)cat.AddTable(std::move(t));
  }
  {
    Table t("supplier", n_supplier);
    t.AddColumn(Key("s_suppkey", n_supplier));
    t.AddColumn(Str("s_name", 25, n_supplier));
    t.AddColumn(Str("s_address", 40, n_supplier));
    t.AddColumn(Fk("s_nationkey", n_nation));
    t.AddColumn(Str("s_phone", 15, n_supplier));
    t.AddColumn(Num("s_acctbal", std::min(n_supplier, 9999.0 * 100), -999.99, 9999.99));
    t.AddColumn(Str("s_comment", 100, n_supplier));
    t.AddIndex(IndexDef{{"s_suppkey"}, /*clustered=*/true});
    (void)cat.AddTable(std::move(t));
  }
  {
    Table t("part", n_part);
    t.AddColumn(Key("p_partkey", n_part));
    t.AddColumn(Str("p_name", 55, n_part));
    t.AddColumn(Str("p_mfgr", 25, 5));
    t.AddColumn(Str("p_brand", 10, 25));
    t.AddColumn(Str("p_type", 25, 150));
    t.AddColumn(IntCol("p_size", 50, 1, 50));
    t.AddColumn(Str("p_container", 10, 40));
    t.AddColumn(Num("p_retailprice", std::min(n_part, 120000.0), 900.0, 2100.0));
    t.AddColumn(Str("p_comment", 20, n_part));
    t.AddIndex(IndexDef{{"p_partkey"}, /*clustered=*/true});
    (void)cat.AddTable(std::move(t));
  }
  {
    Table t("partsupp", n_partsupp);
    t.AddColumn(Fk("ps_partkey", n_part));
    t.AddColumn(Fk("ps_suppkey", n_supplier));
    t.AddColumn(IntCol("ps_availqty", 9999, 1, 9999));
    t.AddColumn(Num("ps_supplycost", std::min(n_partsupp, 99900.0), 1.0, 1000.0));
    t.AddColumn(Str("ps_comment", 150, n_partsupp));
    t.AddIndex(IndexDef{{"ps_partkey", "ps_suppkey"}, /*clustered=*/true});
    (void)cat.AddTable(std::move(t));
  }
  {
    Table t("customer", n_customer);
    t.AddColumn(Key("c_custkey", n_customer));
    t.AddColumn(Str("c_name", 25, n_customer));
    t.AddColumn(Str("c_address", 40, n_customer));
    t.AddColumn(Fk("c_nationkey", n_nation));
    t.AddColumn(Str("c_phone", 15, n_customer));
    t.AddColumn(Num("c_acctbal", std::min(n_customer, 9999.0 * 100), -999.99, 9999.99));
    t.AddColumn(Str("c_mktsegment", 10, 5));
    t.AddColumn(Str("c_comment", 115, n_customer));
    t.AddIndex(IndexDef{{"c_custkey"}, /*clustered=*/true});
    (void)cat.AddTable(std::move(t));
  }
  {
    Table t("orders", n_orders);
    t.AddColumn(Key("o_orderkey", n_orders));
    t.AddColumn(Fk("o_custkey", n_customer));
    t.AddColumn(Str("o_orderstatus", 1, 3));
    t.AddColumn(Num("o_totalprice", std::min(n_orders, 1500000.0), 800.0, 560000.0));
    t.AddColumn(Date("o_orderdate"));
    t.AddColumn(Str("o_orderpriority", 15, 5));
    t.AddColumn(Str("o_clerk", 15, 1000 * sf));
    t.AddColumn(IntCol("o_shippriority", 1, 0, 0));
    t.AddColumn(Str("o_comment", 75, n_orders));
    t.AddIndex(IndexDef{{"o_orderkey"}, /*clustered=*/true});
    (void)cat.AddTable(std::move(t));
  }
  {
    Table t("lineitem", n_lineitem);
    t.AddColumn(Fk("l_orderkey", n_orders));
    t.AddColumn(Fk("l_partkey", n_part));
    t.AddColumn(Fk("l_suppkey", n_supplier));
    t.AddColumn(IntCol("l_linenumber", 7, 1, 7));
    t.AddColumn(Num("l_quantity", 50, 1, 50));
    t.AddColumn(Num("l_extendedprice", std::min(n_lineitem, 1000000.0), 900.0,
                    105000.0));
    t.AddColumn(Num("l_discount", 11, 0.0, 0.10));
    t.AddColumn(Num("l_tax", 9, 0.0, 0.08));
    t.AddColumn(Str("l_returnflag", 1, 3));
    t.AddColumn(Str("l_linestatus", 1, 2));
    t.AddColumn(Date("l_shipdate"));
    t.AddColumn(Date("l_commitdate"));
    t.AddColumn(Date("l_receiptdate"));
    t.AddColumn(Str("l_shipinstruct", 25, 4));
    t.AddColumn(Str("l_shipmode", 10, 7));
    t.AddColumn(Str("l_comment", 44, n_lineitem));
    t.AddIndex(IndexDef{{"l_orderkey", "l_linenumber"}, /*clustered=*/true});
    (void)cat.AddTable(std::move(t));
  }

  return cat;
}

}  // namespace mqo
