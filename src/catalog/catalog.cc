#include "catalog/catalog.h"

#include <cassert>
#include <cstdio>

namespace mqo {

const char* ColumnTypeToString(ColumnType t) {
  switch (t) {
    case ColumnType::kInt:
      return "INT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
    case ColumnType::kDate:
      return "DATE";
  }
  return "?";
}

void Table::AddColumn(ColumnDef col) {
  assert(!HasColumn(col.name));
  columns_.push_back(std::move(col));
}

void Table::AddIndex(IndexDef index) {
  if (index.clustered) {
    assert(clustered_index() == nullptr);
  }
  indexes_.push_back(std::move(index));
}

Result<ColumnDef> Table::GetColumn(const std::string& name) const {
  for (const auto& c : columns_) {
    if (c.name == name) return c;
  }
  return Status::NotFound("column '" + name + "' in table '" + name_ + "'");
}

bool Table::HasColumn(const std::string& name) const {
  for (const auto& c : columns_) {
    if (c.name == name) return true;
  }
  return false;
}

int Table::RowWidthBytes() const {
  int w = 0;
  for (const auto& c : columns_) w += c.width_bytes;
  return w;
}

const IndexDef* Table::clustered_index() const {
  for (const auto& idx : indexes_) {
    if (idx.clustered) return &idx;
  }
  return nullptr;
}

Status Catalog::AddTable(Table table) {
  auto [it, inserted] = tables_.emplace(table.name(), std::move(table));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("table already in catalog");
  }
  return Status::OK();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "'");
  }
  return &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, t] : tables_) names.push_back(name);
  return names;
}

int DateToDays(const std::string& iso_date) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(iso_date.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    return 0;
  }
  // Days-from-civil algorithm (Howard Hinnant), offset so 1992-01-01 == 0.
  auto days_from_civil = [](int yy, int mm, int dd) {
    yy -= mm <= 2;
    int era = (yy >= 0 ? yy : yy - 399) / 400;
    unsigned yoe = static_cast<unsigned>(yy - era * 400);
    unsigned doy = (153u * (mm + (mm > 2 ? -3 : 9)) + 2) / 5 + dd - 1;
    unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    return era * 146097 + static_cast<int>(doe) - 719468;
  };
  return days_from_civil(y, m, d) - days_from_civil(1992, 1, 1);
}

}  // namespace mqo
