// Analytic TPC-D (TPC-H v1 schema) catalog generator.
//
// The paper evaluates on the TPCD benchmark database at scale 1 (1GB) and
// scale 100 (100GB) with clustered indexes on the primary keys of all base
// relations. We reproduce the schema and its statistics analytically: row
// counts scale linearly (except nation/region), key columns have as many
// distinct values as rows, foreign keys as many as the referenced table, and
// date columns span 1992-01-01 .. 1998-12-31.

#ifndef MQO_CATALOG_TPCD_H_
#define MQO_CATALOG_TPCD_H_

#include "catalog/catalog.h"

namespace mqo {

/// Builds the TPC-D catalog at the given scale factor (1 => 1GB, 100 => 100GB)
/// with clustered primary-key indexes on every base relation.
Catalog MakeTpcdCatalog(double scale_factor);

}  // namespace mqo

#endif  // MQO_CATALOG_TPCD_H_
