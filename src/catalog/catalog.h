// Catalog: tables, columns, per-column statistics, and indexes.
//
// The optimizer works purely on estimated statistics (as in the paper, where
// reported costs are optimizer estimates); the catalog therefore stores
// analytic statistics rather than data: row counts, column widths, distinct
// value counts, and numeric min/max ranges for selectivity estimation.

#ifndef MQO_CATALOG_CATALOG_H_
#define MQO_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace mqo {

/// Logical column type. Dates are stored as integer day offsets.
enum class ColumnType { kInt, kDouble, kString, kDate };

const char* ColumnTypeToString(ColumnType t);

/// Schema + statistics for one column of a base table.
struct ColumnDef {
  std::string name;        ///< Unqualified name, e.g. "o_orderdate".
  ColumnType type = ColumnType::kInt;
  int width_bytes = 4;     ///< Average stored width, used for row-size estimates.
  double distinct_values = 1.0;  ///< Estimated number of distinct values.
  double min_value = 0.0;  ///< Lower bound for numeric/date range selectivity.
  double max_value = 0.0;  ///< Upper bound for numeric/date range selectivity.
};

/// A (possibly clustered) index over a prefix of columns of a table.
///
/// A clustered index implies the relation is stored sorted on the key, so a
/// full scan produces that sort order and range/point predicates on the
/// leading column can use indexed selection.
struct IndexDef {
  std::vector<std::string> key_columns;
  bool clustered = false;
};

/// A base table: named columns with statistics, a row count, and indexes.
class Table {
 public:
  Table(std::string name, double row_count)
      : name_(std::move(name)), row_count_(row_count) {}

  const std::string& name() const { return name_; }
  double row_count() const { return row_count_; }

  /// Appends a column. Column names must be unique within the table.
  void AddColumn(ColumnDef col);

  /// Adds an index. At most one clustered index is allowed.
  void AddIndex(IndexDef index);

  const std::vector<ColumnDef>& columns() const { return columns_; }
  const std::vector<IndexDef>& indexes() const { return indexes_; }

  /// Looks up a column by unqualified name.
  Result<ColumnDef> GetColumn(const std::string& name) const;

  bool HasColumn(const std::string& name) const;

  /// Sum of column widths: the average stored row width in bytes.
  int RowWidthBytes() const;

  /// The clustered index, or nullptr if the table is a heap.
  const IndexDef* clustered_index() const;

 private:
  std::string name_;
  double row_count_;
  std::vector<ColumnDef> columns_;
  std::vector<IndexDef> indexes_;
};

/// A named collection of tables.
class Catalog {
 public:
  /// Registers a table. Fails with AlreadyExists on duplicate names.
  Status AddTable(Table table);

  /// Looks a table up by name.
  Result<const Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const { return tables_.count(name) > 0; }

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, Table> tables_;
};

/// Converts "YYYY-MM-DD" to days since 1992-01-01 (the TPC-D epoch used by
/// the date statistics in this catalog).
int DateToDays(const std::string& iso_date);

}  // namespace mqo

#endif  // MQO_CATALOG_CATALOG_H_
