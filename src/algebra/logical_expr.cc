#include "algebra/logical_expr.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace mqo {

const char* LogicalOpToString(LogicalOp op) {
  switch (op) {
    case LogicalOp::kScan:
      return "Scan";
    case LogicalOp::kSelect:
      return "Select";
    case LogicalOp::kJoin:
      return "Join";
    case LogicalOp::kProject:
      return "Project";
    case LogicalOp::kAggregate:
      return "Aggregate";
    case LogicalOp::kBatch:
      return "Batch";
  }
  return "?";
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

bool AggFuncDecomposable(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
    case AggFunc::kCount:
    case AggFunc::kMin:
    case AggFunc::kMax:
      return true;
    case AggFunc::kAvg:
      return false;
  }
  return false;
}

std::string AggExpr::OutputName() const {
  std::string inner = arg.qualifier.empty() && arg.name.empty() ? "*" : arg.ToString();
  return std::string(AggFuncToString(func)) + "(" + inner + ")";
}

uint64_t AggExpr::Hash() const {
  return HashCombine(static_cast<uint64_t>(func), arg.Hash());
}

LogicalExprPtr LogicalExpr::Scan(std::string table, std::string alias) {
  auto e = std::shared_ptr<LogicalExpr>(new LogicalExpr());
  e->op_ = LogicalOp::kScan;
  e->table_ = std::move(table);
  e->alias_ = alias.empty() ? e->table_ : std::move(alias);
  return e;
}

LogicalExprPtr LogicalExpr::Select(LogicalExprPtr child, Predicate predicate) {
  auto e = std::shared_ptr<LogicalExpr>(new LogicalExpr());
  e->op_ = LogicalOp::kSelect;
  e->children_ = {std::move(child)};
  e->predicate_ = std::move(predicate);
  return e;
}

LogicalExprPtr LogicalExpr::Join(LogicalExprPtr left, LogicalExprPtr right,
                                 JoinPredicate conditions) {
  auto e = std::shared_ptr<LogicalExpr>(new LogicalExpr());
  e->op_ = LogicalOp::kJoin;
  e->children_ = {std::move(left), std::move(right)};
  e->join_predicate_ = std::move(conditions);
  return e;
}

LogicalExprPtr LogicalExpr::Project(LogicalExprPtr child,
                                    std::vector<ColumnRef> columns) {
  auto e = std::shared_ptr<LogicalExpr>(new LogicalExpr());
  e->op_ = LogicalOp::kProject;
  e->children_ = {std::move(child)};
  e->project_columns_ = std::move(columns);
  return e;
}

LogicalExprPtr LogicalExpr::Aggregate(LogicalExprPtr child,
                                      std::vector<ColumnRef> group_by,
                                      std::vector<AggExpr> aggregates) {
  auto e = std::shared_ptr<LogicalExpr>(new LogicalExpr());
  e->op_ = LogicalOp::kAggregate;
  e->children_ = {std::move(child)};
  e->group_by_ = std::move(group_by);
  std::sort(e->group_by_.begin(), e->group_by_.end());
  e->aggregates_ = std::move(aggregates);
  std::sort(e->aggregates_.begin(), e->aggregates_.end());
  return e;
}

LogicalExprPtr LogicalExpr::Batch(std::vector<LogicalExprPtr> queries) {
  auto e = std::shared_ptr<LogicalExpr>(new LogicalExpr());
  e->op_ = LogicalOp::kBatch;
  e->children_ = std::move(queries);
  return e;
}

std::string LogicalExpr::ToString(int indent) const {
  std::ostringstream os;
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << pad << LogicalOpToString(op_);
  switch (op_) {
    case LogicalOp::kScan:
      os << " " << table_;
      if (alias_ != table_) os << " AS " << alias_;
      break;
    case LogicalOp::kSelect:
      os << " [" << predicate_.ToString() << "]";
      break;
    case LogicalOp::kJoin:
      os << " [" << join_predicate_.ToString() << "]";
      break;
    case LogicalOp::kProject: {
      std::vector<std::string> parts;
      for (const auto& c : project_columns_) parts.push_back(c.ToString());
      os << " [" << ::mqo::Join(parts, ", ") << "]";
      break;
    }
    case LogicalOp::kAggregate: {
      std::vector<std::string> parts;
      for (const auto& c : group_by_) parts.push_back(c.ToString());
      for (const auto& a : aggregates_) parts.push_back(a.ToString());
      os << " [" << ::mqo::Join(parts, ", ") << "]";
      break;
    }
    case LogicalOp::kBatch:
      break;
  }
  os << "\n";
  for (const auto& c : children_) os << c->ToString(indent + 1);
  return os.str();
}

namespace {

/// Collects the set of column qualifiers (scan aliases) produced by a subtree.
void CollectQualifiers(const LogicalExprPtr& e, std::set<std::string>* out) {
  if (e->op() == LogicalOp::kScan) {
    out->insert(e->alias());
    return;
  }
  if (e->op() == LogicalOp::kAggregate) {
    // Aggregate output hides base columns other than the group-by columns,
    // but qualifier-level tracking remains sound for push-down: predicates on
    // non-group-by columns cannot appear above an aggregate in a well-formed
    // query, and group-by columns keep their qualifiers.
  }
  for (const auto& c : e->children()) CollectQualifiers(c, out);
}

bool QualifiersCover(const LogicalExprPtr& e, const std::vector<ColumnRef>& cols) {
  std::set<std::string> quals;
  CollectQualifiers(e, &quals);
  for (const auto& c : cols) {
    if (c.qualifier.empty()) return false;  // synthesized (aggregate) column
    if (quals.count(c.qualifier) == 0) return false;
  }
  return true;
}

/// Pushes a single conjunct into `e` as deep as possible; returns the new tree.
LogicalExprPtr PushConjunct(const LogicalExprPtr& e, const Comparison& cmp) {
  switch (e->op()) {
    case LogicalOp::kJoin: {
      const auto& l = e->children()[0];
      const auto& r = e->children()[1];
      if (QualifiersCover(l, {cmp.column})) {
        return LogicalExpr::Join(PushConjunct(l, cmp), r, e->join_predicate());
      }
      if (QualifiersCover(r, {cmp.column})) {
        return LogicalExpr::Join(l, PushConjunct(r, cmp), e->join_predicate());
      }
      break;
    }
    case LogicalOp::kSelect: {
      // Merge into the existing selection, then retry pushing both through.
      Predicate merged = e->predicate();
      merged.AddConjunct(cmp);
      return LogicalExpr::Select(e->children()[0], merged);
    }
    case LogicalOp::kAggregate: {
      // A predicate over a group-by column can be pushed below the aggregate.
      const auto& groups = e->group_by();
      if (std::find(groups.begin(), groups.end(), cmp.column) != groups.end()) {
        return LogicalExpr::Aggregate(PushConjunct(e->children()[0], cmp),
                                      e->group_by(), e->aggregates());
      }
      break;
    }
    default:
      break;
  }
  Predicate p;
  p.AddConjunct(cmp);
  return LogicalExpr::Select(e, p);
}

}  // namespace

LogicalExprPtr NormalizeTree(const LogicalExprPtr& expr) {
  switch (expr->op()) {
    case LogicalOp::kScan:
      return expr;
    case LogicalOp::kSelect: {
      LogicalExprPtr child = NormalizeTree(expr->children()[0]);
      for (const auto& cmp : expr->predicate().conjuncts()) {
        child = PushConjunct(child, cmp);
      }
      return child;
    }
    case LogicalOp::kJoin: {
      return LogicalExpr::Join(NormalizeTree(expr->children()[0]),
                               NormalizeTree(expr->children()[1]),
                               expr->join_predicate());
    }
    case LogicalOp::kProject:
      return LogicalExpr::Project(NormalizeTree(expr->children()[0]),
                                  expr->project_columns());
    case LogicalOp::kAggregate:
      return LogicalExpr::Aggregate(NormalizeTree(expr->children()[0]),
                                    expr->group_by(), expr->aggregates());
    case LogicalOp::kBatch: {
      std::vector<LogicalExprPtr> kids;
      kids.reserve(expr->children().size());
      for (const auto& c : expr->children()) kids.push_back(NormalizeTree(c));
      return LogicalExpr::Batch(std::move(kids));
    }
  }
  assert(false);
  return expr;
}

}  // namespace mqo
