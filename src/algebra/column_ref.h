// Qualified column references.
//
// Every column in the algebra is identified by (qualifier, name), where the
// qualifier is the scan alias that introduced it (e.g. "orders.o_orderdate",
// or "n1.n_name" for an aliased scan of nation). Aggregate outputs use the
// empty qualifier and a deterministic synthesized name such as
// "sum(lineitem.l_extendedprice)".

#ifndef MQO_ALGEBRA_COLUMN_REF_H_
#define MQO_ALGEBRA_COLUMN_REF_H_

#include <string>
#include <vector>

#include "common/hash.h"

namespace mqo {

/// A reference to a column of some (aliased) relation or derived result.
struct ColumnRef {
  std::string qualifier;  ///< Scan alias, or "" for synthesized columns.
  std::string name;       ///< Column name within the qualifier.

  ColumnRef() = default;
  ColumnRef(std::string q, std::string n)
      : qualifier(std::move(q)), name(std::move(n)) {}

  /// "qualifier.name", or just "name" when unqualified.
  std::string ToString() const {
    if (qualifier.empty()) return name;
    return qualifier + "." + name;
  }

  bool operator==(const ColumnRef& o) const {
    return qualifier == o.qualifier && name == o.name;
  }
  bool operator!=(const ColumnRef& o) const { return !(*this == o); }
  bool operator<(const ColumnRef& o) const {
    if (qualifier != o.qualifier) return qualifier < o.qualifier;
    return name < o.name;
  }

  uint64_t Hash() const {
    return HashCombine(HashString(qualifier), HashString(name));
  }
};

/// A sort order: a sequence of columns, most-significant first. An empty
/// vector means "no required order". Order X satisfies requirement Y iff Y is
/// a prefix of X.
using SortOrder = std::vector<ColumnRef>;

/// True iff `actual` satisfies the `required` order (prefix rule).
inline bool OrderSatisfies(const SortOrder& actual, const SortOrder& required) {
  if (required.size() > actual.size()) return false;
  for (size_t i = 0; i < required.size(); ++i) {
    if (!(actual[i] == required[i])) return false;
  }
  return true;
}

/// Renders "a.x, b.y".
std::string SortOrderToString(const SortOrder& order);

}  // namespace mqo

#endif  // MQO_ALGEBRA_COLUMN_REF_H_
