// Selection and join predicates.
//
// Selections are conjunctions of simple comparisons `col <op> literal`; joins
// carry conjunctions of column equalities `left_col = right_col`. This is the
// predicate language exercised by the TPC-D workload in the paper (select
// push-down, range-constant variation between repeated queries, and equijoin
// graphs), and it is rich enough for select-subsumption reasoning.

#ifndef MQO_ALGEBRA_PREDICATE_H_
#define MQO_ALGEBRA_PREDICATE_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "algebra/column_ref.h"

namespace mqo {

/// Comparison operator in a selection predicate.
enum class CompareOp { kEq, kLt, kLe, kGt, kGe };

const char* CompareOpToString(CompareOp op);

/// A literal: numeric (doubles cover ints and dates-as-day-offsets) or string.
struct Literal {
  std::variant<double, std::string> value;

  Literal() : value(0.0) {}
  /* implicit */ Literal(double v) : value(v) {}
  /* implicit */ Literal(int v) : value(static_cast<double>(v)) {}
  /* implicit */ Literal(std::string v) : value(std::move(v)) {}
  /* implicit */ Literal(const char* v) : value(std::string(v)) {}

  bool is_number() const { return std::holds_alternative<double>(value); }
  double number() const { return std::get<double>(value); }
  const std::string& str() const { return std::get<std::string>(value); }

  std::string ToString() const;
  uint64_t Hash() const;
  bool operator==(const Literal& o) const { return value == o.value; }
  bool operator<(const Literal& o) const;
};

/// One comparison `column <op> literal`.
struct Comparison {
  ColumnRef column;
  CompareOp op = CompareOp::kEq;
  Literal literal;

  std::string ToString() const;
  uint64_t Hash() const;
  bool operator==(const Comparison& o) const {
    return column == o.column && op == o.op && literal == o.literal;
  }
  bool operator<(const Comparison& o) const;
};

/// A conjunction of comparisons, kept sorted for canonical hashing.
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<Comparison> conjuncts);

  /// Adds a conjunct, re-canonicalizing.
  void AddConjunct(Comparison c);

  const std::vector<Comparison>& conjuncts() const { return conjuncts_; }
  bool Empty() const { return conjuncts_.empty(); }

  /// All columns referenced by the predicate.
  std::vector<ColumnRef> ReferencedColumns() const;

  /// "a.x < 5 AND a.y = 'FOO'".
  std::string ToString() const;
  uint64_t Hash() const;
  bool operator==(const Predicate& o) const { return conjuncts_ == o.conjuncts_; }

 private:
  std::vector<Comparison> conjuncts_;  // sorted canonically
};

/// True iff `stronger` logically implies `weaker` for every tuple, decided
/// conservatively for single-column comparisons (used by select subsumption:
/// sigma_strong(E) == sigma_strong(sigma_weak(E)) when strong => weak).
bool ComparisonImplies(const Comparison& stronger, const Comparison& weaker);

/// True iff predicate `stronger` implies predicate `weaker` (every conjunct of
/// `weaker` is implied by some conjunct of `stronger`).
bool PredicateImplies(const Predicate& stronger, const Predicate& weaker);

/// One equijoin condition `left = right`.
struct JoinCondition {
  ColumnRef left;
  ColumnRef right;

  /// Canonical form orders (left, right) lexicographically so that the
  /// condition hashes identically regardless of join input order.
  void Canonicalize();

  std::string ToString() const;
  uint64_t Hash() const;
  bool operator==(const JoinCondition& o) const {
    return left == o.left && right == o.right;
  }
  bool operator<(const JoinCondition& o) const;
};

/// A conjunction of equijoin conditions, kept sorted for canonical hashing.
class JoinPredicate {
 public:
  JoinPredicate() = default;
  explicit JoinPredicate(std::vector<JoinCondition> conditions);

  void AddCondition(JoinCondition c);

  const std::vector<JoinCondition>& conditions() const { return conditions_; }
  bool Empty() const { return conditions_.empty(); }

  std::string ToString() const;
  uint64_t Hash() const;
  bool operator==(const JoinPredicate& o) const {
    return conditions_ == o.conditions_;
  }

 private:
  std::vector<JoinCondition> conditions_;  // each canonicalized, then sorted
};

}  // namespace mqo

#endif  // MQO_ALGEBRA_PREDICATE_H_
