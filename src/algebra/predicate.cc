#include "algebra/predicate.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace mqo {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string Literal::ToString() const {
  if (is_number()) return FormatDouble(number(), number() == static_cast<int64_t>(number()) ? 0 : 3);
  return "'" + str() + "'";
}

uint64_t Literal::Hash() const {
  if (is_number()) return HashCombine(1, HashDouble(number()));
  return HashCombine(2, HashString(str()));
}

bool Literal::operator<(const Literal& o) const {
  if (is_number() != o.is_number()) return is_number();
  if (is_number()) return number() < o.number();
  return str() < o.str();
}

std::string Comparison::ToString() const {
  return column.ToString() + " " + CompareOpToString(op) + " " + literal.ToString();
}

uint64_t Comparison::Hash() const {
  uint64_t h = column.Hash();
  h = HashCombine(h, static_cast<uint64_t>(op));
  h = HashCombine(h, literal.Hash());
  return h;
}

bool Comparison::operator<(const Comparison& o) const {
  if (!(column == o.column)) return column < o.column;
  if (op != o.op) return op < o.op;
  return literal < o.literal;
}

Predicate::Predicate(std::vector<Comparison> conjuncts)
    : conjuncts_(std::move(conjuncts)) {
  std::sort(conjuncts_.begin(), conjuncts_.end());
  conjuncts_.erase(std::unique(conjuncts_.begin(), conjuncts_.end()),
                   conjuncts_.end());
}

void Predicate::AddConjunct(Comparison c) {
  conjuncts_.push_back(std::move(c));
  std::sort(conjuncts_.begin(), conjuncts_.end());
  conjuncts_.erase(std::unique(conjuncts_.begin(), conjuncts_.end()),
                   conjuncts_.end());
}

std::vector<ColumnRef> Predicate::ReferencedColumns() const {
  std::vector<ColumnRef> cols;
  for (const auto& c : conjuncts_) cols.push_back(c.column);
  return cols;
}

std::string Predicate::ToString() const {
  std::vector<std::string> parts;
  for (const auto& c : conjuncts_) parts.push_back(c.ToString());
  return Join(parts, " AND ");
}

uint64_t Predicate::Hash() const {
  uint64_t h = 0xfeedface12345678ull;
  for (const auto& c : conjuncts_) h = HashCombine(h, c.Hash());
  return h;
}

bool ComparisonImplies(const Comparison& stronger, const Comparison& weaker) {
  if (!(stronger.column == weaker.column)) return false;
  if (stronger.literal.is_number() != weaker.literal.is_number()) return false;
  if (!stronger.literal.is_number()) {
    // String comparisons: only equality implication is decided.
    return stronger.op == CompareOp::kEq && weaker.op == CompareOp::kEq &&
           stronger.literal == weaker.literal;
  }
  const double a = stronger.literal.number();
  const double b = weaker.literal.number();
  switch (weaker.op) {
    case CompareOp::kEq:
      return stronger.op == CompareOp::kEq && a == b;
    case CompareOp::kLt:
      // x (op) a implies x < b ?
      if (stronger.op == CompareOp::kLt) return a <= b;
      if (stronger.op == CompareOp::kLe) return a < b;
      if (stronger.op == CompareOp::kEq) return a < b;
      return false;
    case CompareOp::kLe:
      if (stronger.op == CompareOp::kLt) return a <= b;  // x<a => x<=b if a<=b
      if (stronger.op == CompareOp::kLe) return a <= b;
      if (stronger.op == CompareOp::kEq) return a <= b;
      return false;
    case CompareOp::kGt:
      if (stronger.op == CompareOp::kGt) return a >= b;
      if (stronger.op == CompareOp::kGe) return a > b;
      if (stronger.op == CompareOp::kEq) return a > b;
      return false;
    case CompareOp::kGe:
      if (stronger.op == CompareOp::kGt) return a >= b;
      if (stronger.op == CompareOp::kGe) return a >= b;
      if (stronger.op == CompareOp::kEq) return a >= b;
      return false;
  }
  return false;
}

bool PredicateImplies(const Predicate& stronger, const Predicate& weaker) {
  for (const auto& w : weaker.conjuncts()) {
    bool implied = false;
    for (const auto& s : stronger.conjuncts()) {
      if (ComparisonImplies(s, w)) {
        implied = true;
        break;
      }
    }
    if (!implied) return false;
  }
  return true;
}

void JoinCondition::Canonicalize() {
  if (right < left) std::swap(left, right);
}

std::string JoinCondition::ToString() const {
  return left.ToString() + " = " + right.ToString();
}

uint64_t JoinCondition::Hash() const {
  return HashCombine(left.Hash(), right.Hash());
}

bool JoinCondition::operator<(const JoinCondition& o) const {
  if (!(left == o.left)) return left < o.left;
  return right < o.right;
}

JoinPredicate::JoinPredicate(std::vector<JoinCondition> conditions)
    : conditions_(std::move(conditions)) {
  for (auto& c : conditions_) c.Canonicalize();
  std::sort(conditions_.begin(), conditions_.end());
  conditions_.erase(std::unique(conditions_.begin(), conditions_.end()),
                    conditions_.end());
}

void JoinPredicate::AddCondition(JoinCondition c) {
  c.Canonicalize();
  conditions_.push_back(std::move(c));
  std::sort(conditions_.begin(), conditions_.end());
  conditions_.erase(std::unique(conditions_.begin(), conditions_.end()),
                    conditions_.end());
}

std::string JoinPredicate::ToString() const {
  std::vector<std::string> parts;
  for (const auto& c : conditions_) parts.push_back(c.ToString());
  return Join(parts, " AND ");
}

uint64_t JoinPredicate::Hash() const {
  uint64_t h = 0xdeadbeefcafef00dull;
  for (const auto& c : conditions_) h = HashCombine(h, c.Hash());
  return h;
}

std::string SortOrderToString(const SortOrder& order) {
  std::vector<std::string> parts;
  for (const auto& c : order) parts.push_back(c.ToString());
  return Join(parts, ", ");
}

}  // namespace mqo
