// Logical relational algebra expressions.
//
// A LogicalExpr is an immutable operator tree: relation scans (with aliases,
// so self-joins are expressible), selections, equijoins, group-by aggregates,
// and projections. Queries are built as trees with the fluent helpers below
// (or the SQL frontend) and then inserted into the LQDAG memo, which unifies
// common subexpressions across the batch.

#ifndef MQO_ALGEBRA_LOGICAL_EXPR_H_
#define MQO_ALGEBRA_LOGICAL_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/predicate.h"
#include "common/status.h"

namespace mqo {

/// Logical operator kind. kBatch is the dummy root that ties the individual
/// query roots of a batch into a single rooted DAG (Section 2.2 of the paper).
enum class LogicalOp {
  kScan,
  kSelect,
  kJoin,
  kProject,
  kAggregate,
  kBatch,
};

const char* LogicalOpToString(LogicalOp op);

/// Aggregate function in a group-by.
enum class AggFunc { kSum, kCount, kMin, kMax, kAvg };

const char* AggFuncToString(AggFunc f);

/// True for functions where agg-of-agg re-aggregation is valid
/// (SUM/MIN/MAX; COUNT re-aggregates as SUM of counts). AVG is not
/// decomposable and blocks aggregate subsumption.
bool AggFuncDecomposable(AggFunc f);

/// One aggregate expression `func(arg)`. Its output column is the unqualified
/// ColumnRef{"", OutputName()} so that identical aggregates in different
/// queries unify.
struct AggExpr {
  AggFunc func = AggFunc::kSum;
  ColumnRef arg;  ///< Ignored for COUNT(*) (empty ref).

  /// Deterministic output column name, e.g. "sum(lineitem.l_extendedprice)".
  std::string OutputName() const;
  ColumnRef OutputColumn() const { return ColumnRef("", OutputName()); }

  std::string ToString() const { return OutputName(); }
  uint64_t Hash() const;
  bool operator==(const AggExpr& o) const { return func == o.func && arg == o.arg; }
  bool operator<(const AggExpr& o) const {
    if (func != o.func) return func < o.func;
    return arg < o.arg;
  }
};

class LogicalExpr;
using LogicalExprPtr = std::shared_ptr<const LogicalExpr>;

/// Immutable logical operator tree node.
class LogicalExpr {
 public:
  LogicalOp op() const { return op_; }
  const std::vector<LogicalExprPtr>& children() const { return children_; }

  // Scan payload.
  const std::string& table() const { return table_; }
  const std::string& alias() const { return alias_; }

  // Select payload.
  const Predicate& predicate() const { return predicate_; }

  // Join payload.
  const JoinPredicate& join_predicate() const { return join_predicate_; }

  // Project payload.
  const std::vector<ColumnRef>& project_columns() const { return project_columns_; }

  // Aggregate payload.
  const std::vector<ColumnRef>& group_by() const { return group_by_; }
  const std::vector<AggExpr>& aggregates() const { return aggregates_; }

  /// Multi-line indented tree rendering for debugging and examples.
  std::string ToString(int indent = 0) const;

  // ---- Factory functions ----

  /// Scan of a base table under `alias` (defaults to the table name).
  static LogicalExprPtr Scan(std::string table, std::string alias = "");

  /// Selection `predicate` over `child`.
  static LogicalExprPtr Select(LogicalExprPtr child, Predicate predicate);

  /// Equijoin of `left` and `right` on `conditions`.
  static LogicalExprPtr Join(LogicalExprPtr left, LogicalExprPtr right,
                             JoinPredicate conditions);

  /// Projection of `columns` from `child`.
  static LogicalExprPtr Project(LogicalExprPtr child, std::vector<ColumnRef> columns);

  /// Group-by aggregate. `group_by` may be empty (scalar aggregate).
  static LogicalExprPtr Aggregate(LogicalExprPtr child, std::vector<ColumnRef> group_by,
                                  std::vector<AggExpr> aggregates);

  /// Dummy batch root over the individual query roots.
  static LogicalExprPtr Batch(std::vector<LogicalExprPtr> queries);

 private:
  LogicalExpr() = default;

  LogicalOp op_ = LogicalOp::kScan;
  std::vector<LogicalExprPtr> children_;
  std::string table_;
  std::string alias_;
  Predicate predicate_;
  JoinPredicate join_predicate_;
  std::vector<ColumnRef> project_columns_;
  std::vector<ColumnRef> group_by_;
  std::vector<AggExpr> aggregates_;
};

/// Normalizes a query tree before memo insertion:
///  - splits selection conjuncts and pushes each as far down as it can go
///    (below joins onto the side whose columns it references),
///  - merges adjacent selections,
///  - drops empty selections.
/// Join-order normalization is NOT done here; the memo's transformation rules
/// explore join orders.
LogicalExprPtr NormalizeTree(const LogicalExprPtr& expr);

}  // namespace mqo

#endif  // MQO_ALGEBRA_LOGICAL_EXPR_H_
